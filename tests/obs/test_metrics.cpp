// Unit tests for the metrics registry: instrument semantics, log2
// histogram bucketing/quantiles, and the Prometheus text snapshot.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace empls::obs {
namespace {

TEST(Histogram, BucketsFollowBitWidth) {
  Histogram h;
  h.record(0);  // bucket 0: exactly {0}
  h.record(1);  // bucket 1: [1, 1]
  h.record(2);  // bucket 2: [2, 3]
  h.record(3);
  h.record(1023);  // bucket 10: [512, 1023]
  h.record(1024);  // bucket 11
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[10], 1u);
  EXPECT_EQ(b[11], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1023 + 1024);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, ExtremesLandInTheLastBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.buckets()[64], 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

TEST(Histogram, QuantileReturnsBucketUpperBound) {
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) {
    h.record(5);  // bucket 3, upper bound 7
  }
  for (int i = 0; i < 10; ++i) {
    h.record(1000);  // bucket 10, upper bound 1023
  }
  EXPECT_EQ(h.quantile(0.0), 7u);
  EXPECT_EQ(h.quantile(0.5), 7u);
  // Tail quantiles land in the top bucket, whose upper bound (1023) is
  // clamped to the observed max.
  EXPECT_EQ(h.quantile(0.99), 1000u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(MetricsRegistry, SameNameAndLabelsReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter& a = reg.counter("empls_test_total", R"(router="A")");
  Counter& b = reg.counter("empls_test_total", R"(router="A")");
  Counter& c = reg.counter("empls_test_total", R"(router="B")");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(MetricsRegistry, HandlesStayValidAcrossGrowth) {
  MetricsRegistry reg;
  Counter& first = reg.counter("empls_first_total");
  for (int i = 0; i < 1000; ++i) {
    reg.counter("empls_churn_total", "i=\"" + std::to_string(i) + "\"");
  }
  first.inc();
  EXPECT_EQ(reg.find_counter("empls_first_total")->value(), 1u);
}

TEST(MetricsRegistry, FindDoesNotRegister) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("empls_absent_total"), nullptr);
  EXPECT_EQ(reg.series_count(), 0u);
  reg.gauge("empls_g");
  // Same name, different kind: not found.
  EXPECT_EQ(reg.find_counter("empls_g"), nullptr);
  EXPECT_NE(reg.find_gauge("empls_g"), nullptr);
}

TEST(MetricsRegistry, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.counter("empls_rx_total", R"(router="R0")", "packets received").inc(7);
  reg.gauge("empls_util", R"(link="A->B")").set(0.25);
  Histogram& h = reg.histogram("empls_lat_ns", {}, "latency");
  h.record(3);   // bucket 2 (le 3)
  h.record(10);  // bucket 4 (le 15)

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP empls_rx_total packets received\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE empls_rx_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("empls_rx_total{router=\"R0\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE empls_util gauge\n"), std::string::npos);
  EXPECT_NE(text.find("empls_util{link=\"A->B\"} 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE empls_lat_ns histogram\n"), std::string::npos);
  // Cumulative le buckets: 3 holds one sample, 15 holds both.
  EXPECT_NE(text.find("empls_lat_ns_bucket{le=\"3\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("empls_lat_ns_bucket{le=\"15\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("empls_lat_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("empls_lat_ns_sum 13\n"), std::string::npos);
  EXPECT_NE(text.find("empls_lat_ns_count 2\n"), std::string::npos);
}

TEST(MetricsRegistry, ExportOrderIsRegistrationOrder) {
  MetricsRegistry reg;
  reg.counter("empls_zz_total").inc();
  reg.counter("empls_aa_total").inc();
  const std::string text = reg.prometheus_text();
  EXPECT_LT(text.find("empls_zz_total"), text.find("empls_aa_total"));
}

TEST(MetricsRegistry, HelpTextIsEscaped) {
  MetricsRegistry reg;
  reg.counter("empls_esc_total", {}, "line one\nback\\slash").inc();
  const std::string text = reg.prometheus_text();
  // Newline becomes the two characters \n, backslash doubles — the HELP
  // line must stay a single line or the exposition format breaks.
  EXPECT_NE(text.find("# HELP empls_esc_total line one\\nback\\\\slash\n"),
            std::string::npos);
}

TEST(MetricsRegistry, DuplicateKindRegistrationThrows) {
  MetricsRegistry reg;
  reg.counter("empls_dup");
  EXPECT_THROW(reg.gauge("empls_dup"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("empls_dup"), std::invalid_argument);
  reg.histogram("empls_h");
  EXPECT_THROW(reg.counter("empls_h"), std::invalid_argument);
  // Same name + same kind stays fine (it is the same family).
  EXPECT_NO_THROW(reg.counter("empls_dup", R"(x="1")"));
}

TEST(MetricsRegistry, VisitWalksEverySeriesInOrder) {
  MetricsRegistry reg;
  reg.counter("empls_c_total", R"(k="v")").inc(2);
  reg.gauge("empls_g").set(1.5);
  reg.histogram("empls_h").record(9);

  std::vector<std::string> names;
  reg.visit([&](const MetricsRegistry::SeriesRef& s) {
    names.emplace_back(s.name);
    if (s.counter != nullptr) {
      EXPECT_EQ(s.name, "empls_c_total");
      EXPECT_EQ(s.labels, R"(k="v")");
      EXPECT_EQ(s.counter->value(), 2u);
    } else if (s.gauge != nullptr) {
      EXPECT_DOUBLE_EQ(s.gauge->value(), 1.5);
    } else {
      ASSERT_NE(s.histogram, nullptr);
      EXPECT_EQ(s.histogram->count(), 1u);
    }
  });
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "empls_c_total");
  EXPECT_EQ(names[1], "empls_g");
  EXPECT_EQ(names[2], "empls_h");
}

TEST(Histogram, QuantileOfBucketDeltas) {
  // quantile_of computes quantiles over an arbitrary bucket-count
  // array — the timeline uses it on per-window deltas.
  std::array<std::uint64_t, Histogram::kBuckets> counts{};
  counts[3] = 90;   // upper bound 7
  counts[10] = 10;  // upper bound 1023
  EXPECT_EQ(Histogram::quantile_of(counts, 0.5), 7u);
  EXPECT_EQ(Histogram::quantile_of(counts, 0.99), 1023u);
  std::array<std::uint64_t, Histogram::kBuckets> empty{};
  EXPECT_EQ(Histogram::quantile_of(empty, 0.5), 0u);
}

}  // namespace
}  // namespace empls::obs
