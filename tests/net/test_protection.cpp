// Tests for RFC 4090-style local protection: pre-signaled detours,
// point-of-local-repair switching on the fast link-down signal, and
// revert on recovery.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/failure_detector.hpp"
#include "net/fault_injector.hpp"
#include "net/protection.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;
  NodeId a, b, c, d;

  NodeId add_router(const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  }

  Rig() {
    a = add_router("A", hw::RouterType::kLer);
    b = add_router("B", hw::RouterType::kLsr);
    c = add_router("C", hw::RouterType::kLsr);
    d = add_router("D", hw::RouterType::kLer);
    net.connect(a, b, 100e6, 1e-3);
    net.connect(b, d, 100e6, 1e-3);  // primary core link
    net.connect(b, c, 100e6, 2e-3);  // detour: B-C-D
    net.connect(c, d, 100e6, 2e-3);
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }
};

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

TEST(Protection, ProtectLspSignsDetoursWhereAlternativesExist) {
  Rig rig;
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  // A-B has no way around (A's only link); B-D detours over B-C-D.
  EXPECT_EQ(rig.cp.protect_lsp(*lsp), 1u);
  const auto indices = rig.cp.backups_of(*lsp);
  ASSERT_EQ(indices.size(), 1u);
  const auto& backup = rig.cp.backup(indices[0]);
  EXPECT_EQ(backup.plr, rig.b);
  EXPECT_EQ(backup.merge, rig.d);
  ASSERT_EQ(backup.bypass.size(), 3u);
  EXPECT_EQ(backup.bypass[1], rig.c);
  EXPECT_FALSE(backup.active);
  // The detour's transit binding is already in C's information base —
  // installed ahead of any failure.
  ASSERT_EQ(backup.detour_labels.size(), 1u);
  EXPECT_TRUE(rig.net.node_as<core::EmbeddedRouter>(rig.c)
                  .routing()
                  .out_port(2, backup.detour_labels[0])
                  .has_value());

  // protect_lsp is idempotent: re-protecting keeps the same backup.
  EXPECT_EQ(rig.cp.protect_lsp(*lsp), 1u);
  EXPECT_EQ(rig.cp.backups_of(*lsp).size(), 1u);
}

TEST(Protection, FastSignalSwitchesInDataPlaneTime) {
  Rig rig;
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());
  ASSERT_EQ(rig.cp.protect_lsp(*lsp), 1u);

  ProtectionManager pm(rig.net, rig.cp);
  pm.attach_fast_signal();
  DropAccountant drops(rig.net);

  FlowSpec spec{1, rig.a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.4999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);  // 1000 pps
  probe.start();

  rig.net.events().schedule_at(0.25, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();

  EXPECT_EQ(pm.switches(), 1u);
  EXPECT_TRUE(pm.is_switched(*lsp));
  ASSERT_EQ(pm.events().size(), 1u);
  EXPECT_DOUBLE_EQ(pm.events()[0].at, 0.25);  // same instant as the cut

  // Loss is only the packets already in flight toward the dead link.
  const auto& flow = rig.stats.flow(1);
  const auto lost = flow.sent - flow.delivered;
  EXPECT_LE(lost, 5u);
  EXPECT_EQ(flow.sent, flow.delivered + drops.drops(1));
}

TEST(Protection, RevertsToThePrimaryOnRecovery) {
  Rig rig;
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());
  rig.cp.protect_lsp(*lsp);
  ProtectionManager pm(rig.net, rig.cp);
  pm.attach_fast_signal();
  DropAccountant drops(rig.net);

  FlowSpec spec{1, rig.a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.5999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);
  probe.start();

  rig.net.events().schedule_at(0.2, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.events().schedule_at(0.4, [&] {
    rig.net.set_connection_up(rig.b, rig.d, true);
  });
  rig.net.run();

  EXPECT_EQ(pm.switches(), 1u);
  EXPECT_EQ(pm.reverts(), 1u);
  EXPECT_FALSE(pm.is_switched(*lsp));
  const auto& flow = rig.stats.flow(1);
  EXPECT_EQ(flow.sent, flow.delivered + drops.drops(1));
  // The detour spans 4 ms against the primary's 1 ms: packets delivered
  // after the revert ride the primary again, so the flow keeps running
  // either way.
  EXPECT_GE(flow.delivered, flow.sent - 5);
}

TEST(Protection, IngressLinkUsesAPrefixRebind) {
  Rig rig;
  // Give the ingress link A-B an alternative: A-C-B.
  rig.net.connect(rig.a, rig.c, 100e6, 2e-3);
  rig.net.connect(rig.c, rig.b, 100e6, 2e-3);
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());
  // Both links of the path now have detours.
  EXPECT_EQ(rig.cp.protect_lsp(*lsp), 2u);

  bool saw_ingress = false;
  for (const auto index : rig.cp.backups_of(*lsp)) {
    const auto& backup = rig.cp.backup(index);
    if (backup.plr == rig.a) {
      saw_ingress = true;
      EXPECT_EQ(backup.plr_op, BackupRecord::PlrOp::kIngress);
    }
  }
  ASSERT_TRUE(saw_ingress);

  ProtectionManager pm(rig.net, rig.cp);
  pm.attach_fast_signal();
  DropAccountant drops(rig.net);
  FlowSpec spec{1, rig.a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.4999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);
  probe.start();
  rig.net.events().schedule_at(0.25, [&] {
    rig.net.set_connection_up(rig.a, rig.b, false);
  });
  rig.net.run();

  EXPECT_EQ(pm.switches(), 1u);
  const auto& flow = rig.stats.flow(1);
  EXPECT_LE(flow.sent - flow.delivered, 5u);
  EXPECT_EQ(flow.sent, flow.delivered + drops.drops(1));
}

TEST(Protection, PhpLastLinkDetourPopsTowardTheEgress) {
  Rig rig;
  LspOptions options;
  options.php = true;
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"), options);
  ASSERT_TRUE(lsp.has_value());
  // B-D is the PHP LSP's last link: B's primary op is the pop, so the
  // detour's final hop (C) must pop toward D instead of swapping.
  ASSERT_EQ(rig.cp.protect_lsp(*lsp), 1u);
  const auto indices = rig.cp.backups_of(*lsp);
  ASSERT_EQ(indices.size(), 1u);
  EXPECT_EQ(rig.cp.backup(indices[0]).plr_op, BackupRecord::PlrOp::kPop);

  ProtectionManager pm(rig.net, rig.cp);
  pm.attach_fast_signal();
  DropAccountant drops(rig.net);
  FlowSpec spec{1, rig.a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.4999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);
  probe.start();
  rig.net.events().schedule_at(0.25, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();

  EXPECT_EQ(pm.switches(), 1u);
  const auto& flow = rig.stats.flow(1);
  EXPECT_LE(flow.sent - flow.delivered, 5u);
  EXPECT_EQ(flow.sent, flow.delivered + drops.drops(1));
}

TEST(Protection, DetectorLeavesSwitchedLspsAloneAndRestoresTheRest) {
  Rig rig;
  // lsp1's B-D link is protected; lsp2 pins the unprotectable A-B...
  // actually both LSPs share A-B, so protect only lsp1 and watch the
  // filter: after the switch, hello-based restoration must not tear
  // lsp1 down behind the PLR's back.
  const auto lsp1 = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                         pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp1.has_value());
  ASSERT_EQ(rig.cp.protect_lsp(*lsp1), 1u);

  FailureDetector fd(rig.net, rig.cp, 10e-3, 3);
  fd.watch_all();
  ProtectionManager pm(rig.net, rig.cp);
  pm.attach_fast_signal();
  pm.arm(fd);
  fd.start(0.5);

  rig.net.events().schedule_at(0.1, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();

  EXPECT_EQ(pm.switches(), 1u);
  ASSERT_EQ(fd.events().size(), 1u);
  EXPECT_EQ(fd.events()[0].locally_protected, 1u);
  EXPECT_EQ(fd.events()[0].rerouted, 0u);
  // The record was never torn down and re-signed.
  EXPECT_FALSE(rig.cp.lsp(*lsp1).labels.empty());
}

TEST(Protection, TeardownReleasesBackups) {
  Rig rig;
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());
  ASSERT_EQ(rig.cp.protect_lsp(*lsp), 1u);
  const auto indices = rig.cp.backups_of(*lsp);
  ASSERT_EQ(indices.size(), 1u);
  const auto detour_label = rig.cp.backup(indices[0]).detour_labels[0];

  ASSERT_TRUE(rig.net.node_as<core::EmbeddedRouter>(rig.c)
                  .routing()
                  .label_allocator()
                  .is_allocated(detour_label));
  rig.cp.teardown_lsp(*lsp);
  EXPECT_TRUE(rig.cp.backups_of(*lsp).empty());
  EXPECT_FALSE(rig.cp.backup(indices[0]).live());
  // The detour label went back to C's pool.
  EXPECT_FALSE(rig.net.node_as<core::EmbeddedRouter>(rig.c)
                   .routing()
                   .label_allocator()
                   .is_allocated(detour_label));
}

}  // namespace
}  // namespace empls::net
