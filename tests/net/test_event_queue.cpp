// Unit tests for the discrete-event scheduler: ordering, determinism,
// bounded runs.
#include <gtest/gtest.h>

#include <vector>

#include "net/event_queue.hpp"

namespace empls::net {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesRunInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) {
      q.schedule_in(0.5, chain);
    }
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 2.0) << "time advances to the horizon";
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  double seen = -1;
  q.schedule_at(2.0, [&] { q.schedule_in(1.5, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 3.5);
}

TEST(EventQueue, EmptyQueueRunIsNoop) {
  EventQueue q;
  EXPECT_EQ(q.run(), 0u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace empls::net
