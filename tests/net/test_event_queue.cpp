// Unit tests for the discrete-event scheduler: ordering, determinism,
// bounded runs — run against both backends (heap and calendar), which
// must be observationally identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <random>
#include <utility>
#include <vector>

#include "net/event_queue.hpp"

namespace empls::net {
namespace {

class EventQueueBackends
    : public ::testing::TestWithParam<SchedulerBackend> {
 protected:
  EventQueue make() {
    EventQueue q;
    q.set_scheduler(GetParam());
    return q;
  }
};

TEST_P(EventQueueBackends, RunsInTimeOrder) {
  EventQueue q = make();
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3.0);
}

TEST_P(EventQueueBackends, TiesRunInSchedulingOrder) {
  EventQueue q = make();
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST_P(EventQueueBackends, CallbacksMayScheduleMore) {
  EventQueue q = make();
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) {
      q.schedule_in(0.5, chain);
    }
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(q.now(), 4.5);
}

TEST_P(EventQueueBackends, RunUntilLeavesLaterEventsQueued) {
  EventQueue q = make();
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(2.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 2.0) << "time advances to the horizon";
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST_P(EventQueueBackends, ScheduleInIsRelative) {
  EventQueue q = make();
  double seen = -1;
  q.schedule_at(2.0, [&] { q.schedule_in(1.5, [&] { seen = q.now(); }); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 3.5);
}

TEST_P(EventQueueBackends, EmptyQueueRunIsNoop) {
  EventQueue q = make();
  EXPECT_EQ(q.run(), 0u);
  EXPECT_TRUE(q.empty());
}

// Regression: schedule_at used to accept a time in the past silently,
// executing the event "before" already-executed ones and stepping the
// clock backwards.  It must clamp to now() and count the fixup.
TEST_P(EventQueueBackends, PastScheduleClampsToNow) {
  EventQueue q = make();
  double ran_at = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_at(1.0, [&] { ran_at = q.now(); });  // 1.0 < now()=2.0
  });
  q.run();
  EXPECT_DOUBLE_EQ(ran_at, 2.0) << "clamped to now(), not run in the past";
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.clamped_schedules(), 1u);
  EXPECT_EQ(q.stats().clamped, 1u);
}

TEST_P(EventQueueBackends, ClampedEventRunsAfterSameTimeEvents) {
  EventQueue q = make();
  std::vector<int> order;
  q.schedule_at(2.0, [&] {
    order.push_back(0);
    q.schedule_at(0.5, [&] { order.push_back(2); });  // clamps to 2.0
  });
  q.schedule_at(2.0, [&] { order.push_back(1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}))
      << "a clamped event keeps its (later) sequence number";
}

TEST_P(EventQueueBackends, MoveOnlyCallablesAreSupported) {
  // std::function required copyability; InlineEvent must not.
  EventQueue q = make();
  auto token = std::make_unique<int>(42);
  int seen = 0;
  q.schedule_at(1.0, [t = std::move(token), &seen] { seen = *t; });
  q.run();
  EXPECT_EQ(seen, 42);
}

TEST_P(EventQueueBackends, SparseAndClusteredTimesBothOrder) {
  // Mixes dense clusters with decade-apart gaps: exercises the calendar
  // backend's cursor rotation and direct-search fallback.
  EventQueue q = make();
  std::vector<double> times;
  for (double base : {0.0, 1e-6, 1.0, 1e3, 1e6}) {
    for (int i = 0; i < 20; ++i) {
      times.push_back(base + i * 1e-7);
    }
  }
  std::mt19937 rng(7);
  std::shuffle(times.begin(), times.end(), rng);
  std::vector<double> ran;
  for (const double t : times) {
    q.schedule_at(t, [&ran, &q] { ran.push_back(q.now()); });
  }
  q.run();
  ASSERT_EQ(ran.size(), times.size());
  EXPECT_TRUE(std::is_sorted(ran.begin(), ran.end()));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EventQueueBackends,
    ::testing::Values(SchedulerBackend::kHeap, SchedulerBackend::kCalendar),
    [](const auto& info) {
      return info.param == SchedulerBackend::kHeap ? "Heap" : "Calendar";
    });

TEST(EventQueue, InlineAndHeapFallbackAreCounted) {
  EventQueue q;
  q.schedule_at(1.0, [] {});  // captureless: inline
  struct Big {
    char bytes[128];
  };
  Big big{};
  q.schedule_at(2.0, [big] { (void)big; });  // 128 B > 64 B buffer
  q.run();
  EXPECT_EQ(q.stats().events_inline, 1u);
  EXPECT_EQ(q.stats().events_heap_fallback, 1u);
  EXPECT_EQ(q.stats().scheduled, 2u);
  EXPECT_EQ(q.stats().executed, 2u);
}

TEST(EventQueue, SwitchingBackendMidRunPreservesOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(1.0 + i * 0.25, [&order, i] { order.push_back(i); });
  }
  q.run_until(1.6);  // runs 0, 1, 2
  q.set_scheduler(SchedulerBackend::kCalendar);
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

// Golden-trace equivalence: a randomized workload (including events that
// schedule further events) must execute in the exact same order on both
// backends.
TEST(EventQueue, RandomizedTraceIsBackendIdentical) {
  auto trace_with = [](SchedulerBackend backend) {
    EventQueue q;
    q.set_scheduler(backend);
    std::vector<std::pair<double, int>> trace;
    std::mt19937 rng(12345);
    std::uniform_real_distribution<double> when(0.0, 10.0);
    std::uniform_int_distribution<int> coin(0, 3);
    int next_id = 0;
    std::function<void(int)> fire = [&](int id) {
      trace.emplace_back(q.now(), id);
      if (coin(rng) == 0 && next_id < 4000) {
        const int child = next_id++;
        q.schedule_in(when(rng) * 0.1, [&fire, child] { fire(child); });
      }
    };
    for (int i = 0; i < 1000; ++i) {
      const int id = next_id++;
      q.schedule_at(when(rng), [&fire, id] { fire(id); });
    }
    q.run();
    return trace;
  };
  const auto heap = trace_with(SchedulerBackend::kHeap);
  const auto calendar = trace_with(SchedulerBackend::kCalendar);
  ASSERT_EQ(heap.size(), calendar.size());
  EXPECT_EQ(heap, calendar);
}

}  // namespace
}  // namespace empls::net
