// Tests for the open-addressing flat counter table backing the drop
// accountant and the open-loop flow ledger.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "net/flat_counts.hpp"

namespace empls::net {
namespace {

TEST(FlatCounts, MissingKeyReadsZero) {
  FlatCounts counts;
  EXPECT_EQ(counts.get(42), 0u);
  EXPECT_EQ(counts.size(), 0u);
}

TEST(FlatCounts, InsertAndIncrement) {
  FlatCounts counts;
  ++counts[7];
  ++counts[7];
  counts[9] += 5;
  EXPECT_EQ(counts.get(7), 2u);
  EXPECT_EQ(counts.get(9), 5u);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(FlatCounts, GrowthPreservesEveryCount) {
  FlatCounts counts(16);
  const std::uint32_t n = 10000;  // forces many rehash points from 16
  for (std::uint32_t k = 0; k < n; ++k) {
    counts[k] = k % 7 + 1;
  }
  EXPECT_EQ(counts.size(), n);
  for (std::uint32_t k = 0; k < n; ++k) {
    ASSERT_EQ(counts.get(k), k % 7 + 1) << "key " << k;
  }
  // Load factor stays under 0.7 after growth.
  EXPECT_GT(counts.capacity() * 7, counts.size() * 10);
}

TEST(FlatCounts, SequentialAndSparseKeysCoexist) {
  // Sequential flow ids (loadgen blocks) and sparse scripted ids hash
  // into the same table without collisions losing counts.
  FlatCounts counts;
  for (std::uint32_t k = 0x40000000; k < 0x40000000 + 2000; ++k) {
    ++counts[k];
  }
  ++counts[1];
  ++counts[0x80000000];
  EXPECT_EQ(counts.size(), 2002u);
  EXPECT_EQ(counts.get(0x40000000 + 1234), 1u);
  EXPECT_EQ(counts.get(1), 1u);
  EXPECT_EQ(counts.get(0x80000000), 1u);
}

TEST(FlatCounts, ForEachVisitsEachKeyOnce) {
  FlatCounts counts;
  for (std::uint32_t k = 100; k < 400; ++k) {
    counts[k] = k;
  }
  std::map<std::uint32_t, std::uint64_t> seen;
  counts.for_each([&](std::uint32_t k, std::uint64_t v) { seen[k] += v; });
  EXPECT_EQ(seen.size(), 300u);
  for (const auto& [k, v] : seen) {
    EXPECT_EQ(v, k);
  }
}

TEST(FlatCounts, ClearEmptiesWithoutShrinking) {
  FlatCounts counts(16);
  for (std::uint32_t k = 0; k < 1000; ++k) {
    ++counts[k];
  }
  const auto cap = counts.capacity();
  counts.clear();
  EXPECT_EQ(counts.size(), 0u);
  EXPECT_EQ(counts.get(500), 0u);
  EXPECT_EQ(counts.capacity(), cap) << "clear keeps the slots allocated";
  ++counts[500];
  EXPECT_EQ(counts.get(500), 1u);
}

}  // namespace
}  // namespace empls::net
