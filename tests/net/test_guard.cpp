// Tests for the ingress guard: unit coverage of every screen and the
// degradation ladder, then whole-scenario attack campaigns asserting
// containment — victim goodput intact, every attack packet attributed
// to its specific drop reason, exact per-attack conservation.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "core/scenario_runner.hpp"
#include "net/guard.hpp"
#include "net/scenario.hpp"
#include "obs/drop_reason.hpp"
#include "sw/trie_engine.hpp"

namespace empls::net {
namespace {

GuardConfig armed() {
  GuardConfig cfg;
  cfg.enabled = true;
  return cfg;
}

TEST(IngressGuard, ReservedLabelsRefusedOnlyFromOffDomain) {
  IngressGuard guard(armed());
  // Reserved top label from outside: protocol semantics, never switched.
  auto r = guard.screen(true, 3, false, /*external=*/true, true, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, obs::DropReason::kReservedLabel);
  // The same label on an internal interface is the upstream LSR's
  // business (explicit null etc.) — admitted.
  EXPECT_FALSE(guard.screen(true, 3, false, /*external=*/false, true, 0.0));
  EXPECT_EQ(guard.stats().reserved_drops, 1u);
  EXPECT_EQ(guard.stats().admitted, 1u);
}

TEST(IngressGuard, UnknownExternalLabelIsSpoofing) {
  IngressGuard guard(armed());
  auto r = guard.screen(true, 500, false, true, /*binding_known=*/false,
                        0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, obs::DropReason::kSpoofedLabel);
  EXPECT_FALSE(guard.screen(true, 500, false, true, true, 0.0))
      << "a programmed binding vouches for the label";
  EXPECT_EQ(guard.stats().spoof_drops, 1u);
}

TEST(IngressGuard, ChecksCanBeDisabledIndependently) {
  auto cfg = armed();
  cfg.check_reserved = false;
  cfg.check_spoof = false;
  IngressGuard guard(cfg);
  EXPECT_FALSE(guard.screen(true, 3, false, true, false, 0.0));
  EXPECT_FALSE(guard.screen(true, 500, false, true, false, 0.0));
}

TEST(IngressGuard, TtlExpiryIsBudgetedNotBanned) {
  auto cfg = armed();
  cfg.ttl_expiry_pps = 10;  // burst floor is 8 packets
  IngressGuard guard(cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(guard.screen(false, 0, /*will_expire=*/true, true, true,
                              0.0))
        << "probe " << i << " within the burst";
  }
  auto r = guard.screen(false, 0, true, true, true, 0.0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, obs::DropReason::kTtlRateLimited);
  // Budget refills with time; non-expiring traffic never touches it.
  EXPECT_FALSE(guard.screen(false, 0, true, true, true, 1.0));
  EXPECT_FALSE(guard.screen(false, 0, /*will_expire=*/false, true, true,
                            1.0));
  EXPECT_EQ(guard.stats().ttl_limited, 1u);
}

TEST(IngressGuard, ReprogramAdmissionClipsInstallFloods) {
  auto cfg = armed();
  cfg.reprogram_per_s = 10;  // burst floor 8
  IngressGuard guard(cfg);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(guard.admit_reprogram(0.0));
  }
  EXPECT_FALSE(guard.admit_reprogram(0.0));
  EXPECT_EQ(guard.stats().reprogram_refusals, 1u);
  EXPECT_TRUE(guard.admit_reprogram(0.5)) << "budget refilled";
}

TEST(IngressGuard, LoadLadderAdmitsDemotesThenShedsLowestFirst) {
  IngressGuard guard(armed());  // demote at 0.5, shed at 0.75, maxcos 3
  using A = IngressGuard::LoadAction;
  // Light load: everything admitted.
  EXPECT_EQ(guard.load_action(10, 100, 0), A::kAdmit);
  EXPECT_EQ(guard.load_action(10, 100, 7), A::kAdmit);
  // Demotion band: CoS 1..3 remarked, best effort and CoS > maxcos kept.
  EXPECT_EQ(guard.load_action(60, 100, 2), A::kDemote);
  EXPECT_EQ(guard.load_action(60, 100, 0), A::kAdmit);
  EXPECT_EQ(guard.load_action(60, 100, 5), A::kAdmit);
  // Shed band edge: floor is CoS 1 — only best effort is shed.
  EXPECT_EQ(guard.load_action(76, 100, 0), A::kShed);
  EXPECT_EQ(guard.load_action(76, 100, 5), A::kAdmit);
  // Near-full queue: the floor has risen to CoS 7.
  EXPECT_EQ(guard.load_action(99, 100, 6), A::kShed);
  EXPECT_EQ(guard.load_action(99, 100, 7), A::kAdmit);
  // Unbounded queue never sheds.
  EXPECT_EQ(guard.load_action(99, 0, 0), A::kAdmit);
}

// ---------------------------------------------------------------------
// Whole-scenario containment: a victim CBR flow and one attack per
// survey kind through a guarded two-router LSP.

constexpr char kBase[] = R"(
router LER ler
router EGR ler
link LER EGR 100M 1ms
lsp 10.1.0.0/16 LER EGR
flow cbr 1 LER 10.1.0.5 cos=6 interval=1ms stop=0.5s
run 0.7s
)";

core::ScenarioRunner::Report run_text(const std::string& text) {
  auto result = core::ScenarioRunner::run_text(text);
  EXPECT_TRUE(
      std::holds_alternative<core::ScenarioRunner::Report>(result))
      << std::get<ScenarioError>(result).message;
  return std::get<core::ScenarioRunner::Report>(std::move(result));
}

std::uint64_t victim_delivered(const core::ScenarioRunner::Report& r) {
  return r.flows.flow(1).delivered;
}

TEST(AttackContainment, SpoofFloodFullyAttributedVictimUntouched) {
  const auto baseline = run_text(kBase);
  const auto report = run_text(
      std::string(kBase) +
      "guard *\nattack spoof 0.1s LER rate=5000 for=0.2s seed=3\n");
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto& atk = report.attacks[0];
  EXPECT_GT(atk.injected, 500u);
  EXPECT_EQ(atk.delivered, 0u) << "no spoofed packet may be switched";
  EXPECT_EQ(atk.drops, atk.injected) << "every packet accounted";
  EXPECT_TRUE(report.guard_armed);
  EXPECT_EQ(report.guard.spoof_drops, atk.injected);
  EXPECT_EQ(report.drops[static_cast<std::size_t>(
                obs::DropReason::kSpoofedLabel)],
            atk.injected)
      << "attributed to the specific reason, not a catch-all";
  EXPECT_GE(victim_delivered(report) * 100,
            victim_delivered(baseline) * 95)
      << "victim goodput within 5% of the attack-free baseline";
}

TEST(AttackContainment, ReservedLabelsNeverForwarded) {
  const auto report = run_text(
      std::string(kBase) +
      "guard *\nattack reserved 0.1s LER rate=5000 for=0.2s seed=5\n");
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto& atk = report.attacks[0];
  EXPECT_GT(atk.injected, 500u);
  EXPECT_EQ(atk.delivered, 0u);
  EXPECT_EQ(atk.drops, atk.injected);
  EXPECT_EQ(report.guard.reserved_drops, atk.injected);
  EXPECT_EQ(report.drops[static_cast<std::size_t>(
                obs::DropReason::kReservedLabel)],
            atk.injected);
}

TEST(AttackContainment, TtlFloodIsRateLimitedAndConserved) {
  const auto report = run_text(
      std::string(kBase) +
      "guard * ttl=100\n"
      "attack ttl_flood 0.1s LER rate=5000 for=0.2s seed=7 dst=10.1.0.9\n");
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto& atk = report.attacks[0];
  EXPECT_GT(atk.injected, 500u);
  // Expiring packets never reach the egress; the budgeted share is
  // dropped ttl-expired on the slow path, the flood share is clipped at
  // the guard — together they account for every injected packet.
  EXPECT_EQ(atk.delivered, 0u);
  EXPECT_EQ(atk.drops, atk.injected);
  EXPECT_GT(report.guard.ttl_limited, 0u);
  EXPECT_GT(report.drops[static_cast<std::size_t>(
                obs::DropReason::kTtlRateLimited)],
            0u);
  // The clip dominates: a 5000 pps flood against a 100 pps budget.
  EXPECT_GT(report.guard.ttl_limited * 2, atk.injected);
}

TEST(AttackContainment, ExhaustInstallsAreAdmissionControlled) {
  const auto baseline = run_text(kBase);
  const auto report = run_text(
      std::string(kBase) +
      "guard * reprogram=50\n"
      "attack exhaust 0.1s LER rate=5000 for=0.2s seed=9 dst=10.1.0.1\n");
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto& atk = report.attacks[0];
  EXPECT_GT(atk.injected, 500u);
  // Admitted installs may legitimately deliver (the sprayed addresses
  // sit inside the routed /16); the rest must be refused — and the
  // books still balance exactly.
  EXPECT_EQ(atk.delivered + atk.drops, atk.injected);
  EXPECT_GT(report.guard.reprogram_refusals, 0u);
  EXPECT_GT(report.drops[static_cast<std::size_t>(
                obs::DropReason::kReprogramRateLimited)],
            0u);
  EXPECT_GE(victim_delivered(report) * 100,
            victim_delivered(baseline) * 95);
}

// PR 6 proved the exhaust campaign is admission-controlled against the
// paper's 3x1024-pair base, where the attack can also simply fill the
// level.  With engine=trie the base holds a million pairs per level —
// exhaustion by capacity is off the table — so the reprogram budget is
// the only thing standing between the flood and a control-plane
// overload, and the same containment bar must hold.
TEST(AttackContainment, ExhaustAgainstTrieIsContainedPastTheOldCeiling) {
  // The old ceiling, made concrete: the linear-era engines refuse the
  // 1025th pair per level; the trie accepts well past 3x1024 total.
  sw::TrieEngine big;
  for (rtl::u32 i = 0; i < 4096; ++i) {
    ASSERT_TRUE(big.write_pair(1, mpls::LabelPair{0x0A000000 + i, 7,
                                                  mpls::LabelOp::kPush}))
        << "install " << i << " refused below 4096";
  }
  EXPECT_EQ(big.level_size(1), 4096u);

  const auto trie_base = [](const char* extra) {
    std::string s = R"(
router LER ler engine=trie
router EGR ler engine=trie
link LER EGR 100M 1ms
lsp 10.1.0.0/16 LER EGR
flow cbr 1 LER 10.1.0.5 cos=6 interval=1ms stop=0.5s
run 0.7s
)";
    return s + extra;
  };
  const auto baseline = run_text(trie_base(""));
  const auto report = run_text(trie_base(
      "guard * reprogram=50\n"
      "attack exhaust 0.1s LER rate=5000 for=0.2s seed=9 dst=10.1.0.1\n"));
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto& atk = report.attacks[0];
  EXPECT_GT(atk.injected, 500u);
  EXPECT_EQ(atk.delivered + atk.drops, atk.injected);
  EXPECT_GT(report.guard.reprogram_refusals, 0u);
  EXPECT_GT(report.drops[static_cast<std::size_t>(
                obs::DropReason::kReprogramRateLimited)],
            0u)
      << "refusals attributed to reprogram-rate-limited";
  EXPECT_GE(victim_delivered(report) * 100,
            victim_delivered(baseline) * 95)
      << "victim goodput within 5% of the attack-free trie baseline";
}

TEST(AttackContainment, UnguardedRouterStillConservesButBleeds) {
  // Without the guard the books must still balance (nothing vanishes) —
  // but the attacks land as generic label misses / slow-path churn.
  const auto report = run_text(
      std::string(kBase) +
      "attack spoof 0.1s LER rate=2000 for=0.2s seed=3\n");
  ASSERT_EQ(report.attacks.size(), 1u);
  const auto& atk = report.attacks[0];
  EXPECT_FALSE(report.guard_armed);
  EXPECT_EQ(atk.delivered + atk.drops, atk.injected);
  EXPECT_EQ(report.drops[static_cast<std::size_t>(
                obs::DropReason::kSpoofedLabel)],
            0u)
      << "the specific reason only exists when the guard stamps it";
}

TEST(AttackContainment, MixedCampaignAgainstLoadedRouterStaysContained) {
  // All four kinds plus open-loop background load on a guarded LSP.
  const auto report = run_text(
      std::string(kBase) +
      "guard * ttl=100 reprogram=50\n"
      "loadgen poisson LER 10.1.0.0 rate=2000 flows=256 seed=11 stop=0.5s\n"
      "attack spoof 0.10s LER rate=2000 for=0.15s seed=1\n"
      "attack=reserved 0.12s LER rate=2000 for=0.15s seed=2\n"
      "attack ttl_flood 0.14s LER rate=2000 for=0.15s seed=3 dst=10.1.0.9\n"
      "attack exhaust 0.16s LER rate=2000 for=0.15s seed=4 dst=10.1.0.1\n");
  ASSERT_EQ(report.attacks.size(), 4u);
  for (const auto& atk : report.attacks) {
    EXPECT_EQ(atk.delivered + atk.drops, atk.injected)
        << atk.kind << " leaked packets";
  }
  ASSERT_TRUE(report.loadgen.has_value());
  EXPECT_TRUE(report.loadgen->conserved)
      << "open-loop flows conserve exactly under the campaign";
  EXPECT_GT(report.loadgen->delivered, 0u);
  EXPECT_EQ(report.guard.spoof_drops, report.attacks[0].injected);
  EXPECT_EQ(report.guard.reserved_drops, report.attacks[1].injected);
}

TEST(ScenarioParser, RejectsMalformedOverloadDirectives) {
  const char* bad[] = {
      "router A ler\nloadgen bursty A 10.0.0.1\n",
      "router A ler\nloadgen poisson B 10.0.0.1\n",
      "router A ler\nattack melt 0.1s A\n",
      "router A ler\nattack spoof 0.1s A rate=0\n",
      "router A ler\nguard B\n",
      "router A ler\nguard A shed=2\n",
  };
  for (const auto* text : bad) {
    EXPECT_TRUE(std::holds_alternative<ScenarioError>(
        Scenario::parse(text)))
        << text;
  }
}

TEST(ScenarioParser, ParsesOverloadDirectiveOptions) {
  const auto parsed = Scenario::parse(
      "router A ler\n"
      "loadgen mmpp A 10.0.0.1 rate=5k burst-rate=20k sojourn=50ms "
      "flows=4096 alpha=1.3 minpkts=8 cos=2 size=200 seed=42 "
      "start=0.1s stop=2s\n"
      "attack=ttl_flood 0.25s A rate=9k for=100ms seed=6 dst=10.9.0.1 "
      "cos=5\n"
      "guard * ttl=500 reprogram=100 demote=0.4 shed=0.8 maxcos=2 "
      "spoof=off\n");
  ASSERT_TRUE(std::holds_alternative<Scenario>(parsed))
      << std::get<ScenarioError>(parsed).message;
  const auto& s = std::get<Scenario>(parsed);
  ASSERT_EQ(s.loadgens.size(), 1u);
  const auto& g = s.loadgens[0];
  EXPECT_EQ(g.kind, "mmpp");
  EXPECT_DOUBLE_EQ(g.rate_pps, 5000);
  EXPECT_DOUBLE_EQ(g.burst_rate_pps, 20000);
  EXPECT_DOUBLE_EQ(g.sojourn, 50e-3);
  EXPECT_EQ(g.flows, 4096u);
  EXPECT_DOUBLE_EQ(g.alpha, 1.3);
  EXPECT_EQ(g.min_packets, 8u);
  EXPECT_EQ(g.cos, 2);
  EXPECT_EQ(g.size, 200u);
  EXPECT_EQ(g.seed, 42u);
  EXPECT_DOUBLE_EQ(g.start, 0.1);
  EXPECT_DOUBLE_EQ(g.stop, 2.0);
  ASSERT_EQ(s.attacks.size(), 1u);
  const auto& a = s.attacks[0];
  EXPECT_EQ(a.kind, "ttl_flood");
  EXPECT_DOUBLE_EQ(a.at, 0.25);
  EXPECT_DOUBLE_EQ(a.rate_pps, 9000);
  EXPECT_DOUBLE_EQ(a.duration, 0.1);
  EXPECT_EQ(a.seed, 6u);
  EXPECT_EQ(a.dst, "10.9.0.1");
  EXPECT_EQ(a.cos, 5);
  ASSERT_EQ(s.guards.size(), 1u);
  const auto& gd = s.guards[0];
  EXPECT_EQ(gd.router, "*");
  EXPECT_TRUE(gd.config.enabled);
  EXPECT_DOUBLE_EQ(gd.config.ttl_expiry_pps, 500);
  EXPECT_DOUBLE_EQ(gd.config.reprogram_per_s, 100);
  EXPECT_DOUBLE_EQ(gd.config.demote_occupancy, 0.4);
  EXPECT_DOUBLE_EQ(gd.config.shed_occupancy, 0.8);
  EXPECT_EQ(gd.config.demote_cos_max, 2);
  EXPECT_TRUE(gd.config.check_reserved);
  EXPECT_FALSE(gd.config.check_spoof);
}

}  // namespace
}  // namespace empls::net
