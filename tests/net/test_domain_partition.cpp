// Partition-correctness suite for the multi-domain event runtime
// (net/domain.hpp): block node assignment, boundary-link rebinding and
// ring accounting, the conservative-lookahead value, refusal paths that
// must leave the network untouched, first-event routing, and exact
// (bit-identical) agreement between the deterministic merge and the
// unpartitioned simulator.  Also pins the sim-counter metrics snapshot
// (clamped schedules + calendar rebuilds) that the summary fingerprint
// deliberately omits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/scenario_runner.hpp"
#include "net/domain.hpp"
#include "net/network.hpp"
#include "net/scenario.hpp"
#include "obs/metrics.hpp"

namespace empls::net {
namespace {

/// Forwards every packet that did not arrive on `out` back out of `out`
/// — a one-directional relay for line topologies.
class RelayNode : public Node {
 public:
  RelayNode(std::string name, mpls::InterfaceId out)
      : Node(std::move(name)), out_(out) {}
  void receive(PacketHandle packet, mpls::InterfaceId in_if) override {
    if (in_if != out_) {
      send(std::move(packet), out_);
    }
  }

 private:
  mpls::InterfaceId out_;
};

/// Records every arrival with its simulation time.
class SinkNode : public Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void receive(PacketHandle packet, mpls::InterfaceId in_if) override {
    (void)in_if;
    times.push_back(network()->now());
    bytes.push_back(packet->payload.size());
  }
  std::vector<SimTime> times;
  std::vector<std::size_t> bytes;
};

mpls::Packet sized_packet(std::size_t payload) {
  mpls::Packet p;
  p.payload.assign(payload, 0);
  return p;
}

/// A 4-node line A-B-C-D; B→C is the only domain boundary under the
/// block map {A,B}∪{C,D}.  Relays forward toward D; D is the sink.
struct LineRig {
  Network net;
  NodeId a, b, c, d;
  LineRig(SimTime ab_delay, SimTime bc_delay, SimTime cd_delay,
          double bw = 1e6) {
    a = net.add_node(std::make_unique<RelayNode>("A", 0));
    b = net.add_node(std::make_unique<RelayNode>("B", 1));
    c = net.add_node(std::make_unique<RelayNode>("C", 1));
    d = net.add_node(std::make_unique<SinkNode>("D"));
    net.connect(a, b, bw, ab_delay);  // A:0 <-> B:0
    net.connect(b, c, bw, bc_delay);  // B:1 <-> C:0
    net.connect(c, d, bw, cd_delay);  // C:1 <-> D:0
  }
  SinkNode& sink() { return net.node_as<SinkNode>(d); }
};

TEST(DomainPartition, BlockMapSplitsNodesContiguously) {
  LineRig rig(1e-3, 1e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  const DomainRuntime* drt = rig.net.domain_runtime();
  ASSERT_NE(drt, nullptr);
  EXPECT_EQ(drt->domain_count(), 2u);
  EXPECT_EQ(drt->mode(), SyncMode::kDeterministic);
  EXPECT_EQ(drt->domain_of(rig.a), 0u);
  EXPECT_EQ(drt->domain_of(rig.b), 0u);
  EXPECT_EQ(drt->domain_of(rig.c), 1u);
  EXPECT_EQ(drt->domain_of(rig.d), 1u);
}

TEST(DomainPartition, ExactlyBoundaryLinksGetHandoffHooks) {
  LineRig rig(1e-3, 1e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  const DomainRuntime* drt = rig.net.domain_runtime();
  std::size_t hooked = 0;
  for (NodeId id = 0; id < rig.net.num_nodes(); ++id) {
    for (const auto& adj : rig.net.adjacency(id)) {
      const bool cross = drt->domain_of(id) != drt->domain_of(adj.neighbor);
      EXPECT_EQ(rig.net.link_from(id, adj.port).has_handoff_hook(), cross)
          << "link " << id << "->" << adj.neighbor;
      hooked += cross ? 1 : 0;
    }
  }
  // Both directions of the B-C connection, nothing else.
  EXPECT_EQ(hooked, 2u);
  EXPECT_EQ(drt->boundary_link_count(), 2u);
}

TEST(DomainPartition, RingAccountingMatchesBoundaryTopology) {
  LineRig rig(1e-3, 1e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  const DomainRuntime* drt = rig.net.domain_runtime();
  EXPECT_TRUE(drt->has_ring(0, 1));
  EXPECT_TRUE(drt->has_ring(1, 0));
  EXPECT_FALSE(drt->has_ring(0, 0));
  EXPECT_FALSE(drt->has_ring(1, 1));
  EXPECT_EQ(drt->boundary_links(0, 1), 1u);  // B->C
  EXPECT_EQ(drt->boundary_links(1, 0), 1u);  // C->B
  EXPECT_EQ(drt->boundary_links(0, 0), 0u);
}

TEST(DomainPartition, LookaheadIsMinimumBoundaryDelay) {
  // Intra-domain delays (5ms, 1ms) must not shrink W; only the 2ms
  // boundary crossing counts.
  LineRig rig(5e-3, 2e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kFree));
  EXPECT_DOUBLE_EQ(rig.net.domain_runtime()->lookahead(), 2e-3);
}

TEST(DomainPartition, DisconnectedDomainsHaveInfiniteLookahead) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<RelayNode>("A", 0));
  const NodeId b = net.add_node(std::make_unique<SinkNode>("B"));
  const NodeId c = net.add_node(std::make_unique<RelayNode>("C", 0));
  const NodeId d = net.add_node(std::make_unique<SinkNode>("D"));
  net.connect(a, b, 1e6, 1e-3);
  net.connect(c, d, 1e6, 1e-3);
  ASSERT_TRUE(net.partition(2, SyncMode::kFree));
  const DomainRuntime* drt = net.domain_runtime();
  EXPECT_EQ(drt->boundary_link_count(), 0u);
  EXPECT_TRUE(std::isinf(drt->lookahead()));
  // Fully independent domains still run to completion.
  net.inject(a, sized_packet(64));
  net.inject(c, sized_packet(64));
  net.run();
  EXPECT_EQ(net.node_as<SinkNode>(b).times.size(), 1u);
  EXPECT_EQ(net.node_as<SinkNode>(d).times.size(), 1u);
}

TEST(DomainPartition, RefusalsLeaveTheNetworkUnpartitioned) {
  {  // Fewer than 2 domains.
    LineRig rig(1e-3, 1e-3, 1e-3);
    EXPECT_FALSE(rig.net.partition(1, SyncMode::kDeterministic));
    EXPECT_EQ(rig.net.domain_runtime(), nullptr);
  }
  {  // Already partitioned.
    LineRig rig(1e-3, 1e-3, 1e-3);
    ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
    EXPECT_FALSE(rig.net.partition(2, SyncMode::kDeterministic));
    EXPECT_NE(rig.net.domain_runtime(), nullptr);
  }
  {  // Legacy fastpath bypasses the handoff hook in the transmitter.
    LineRig rig(1e-3, 1e-3, 1e-3);
    rig.net.set_legacy_fastpath(true);
    EXPECT_FALSE(rig.net.partition(2, SyncMode::kDeterministic));
    EXPECT_EQ(rig.net.domain_runtime(), nullptr);
  }
  {  // Explicit map with an out-of-range domain id.
    LineRig rig(1e-3, 1e-3, 1e-3);
    EXPECT_FALSE(
        rig.net.partition({0, 0, 2, 1}, 2, SyncMode::kDeterministic));
    EXPECT_EQ(rig.net.domain_runtime(), nullptr);
  }
  {  // Map sized for the wrong node count.
    LineRig rig(1e-3, 1e-3, 1e-3);
    EXPECT_FALSE(rig.net.partition({0, 0, 1}, 2, SyncMode::kDeterministic));
    EXPECT_EQ(rig.net.domain_runtime(), nullptr);
  }
}

TEST(DomainPartition, FreeModeRefusesZeroLookaheadBoundary) {
  // A zero-delay boundary link gives W = 0: free-running windows could
  // never admit an event.  The refusal must happen before any link is
  // rebound, so a deterministic partition afterwards still works.
  LineRig rig(1e-3, 0.0, 1e-3);
  EXPECT_FALSE(rig.net.partition(2, SyncMode::kFree));
  EXPECT_EQ(rig.net.domain_runtime(), nullptr);
  EXPECT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  rig.net.inject(rig.a, sized_packet(64));
  rig.net.run();
  EXPECT_EQ(rig.sink().times.size(), 1u);
}

TEST(DomainPartition, EventsForRoutesToTheOwningDomainQueue) {
  LineRig rig(1e-3, 1e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  DomainRuntime* drt = rig.net.domain_runtime();
  // Domain 0 aliases the network's own queue and pool.
  EXPECT_EQ(&rig.net.events_for(rig.a), &drt->events(0));
  EXPECT_EQ(&rig.net.events_for(rig.b), &drt->events(0));
  EXPECT_EQ(&rig.net.events_for(rig.c), &drt->events(1));
  EXPECT_EQ(&rig.net.events_for(rig.d), &drt->events(1));
  EXPECT_NE(&drt->events(0), &drt->events(1));
  EXPECT_EQ(&rig.net.pool_for(rig.c), &drt->pool(1));
}

TEST(DomainPartition, DeterministicMergeMatchesUnpartitionedExactly) {
  const int kPackets = 8;
  auto drive = [&](LineRig& rig) {
    for (int i = 0; i < kPackets; ++i) {
      rig.net.inject(rig.a, sized_packet(64 + 8 * i));
    }
    rig.net.run();
  };

  LineRig golden(1e-3, 2e-3, 3e-3);
  drive(golden);

  LineRig part(1e-3, 2e-3, 3e-3);
  ASSERT_TRUE(part.net.partition(2, SyncMode::kDeterministic));
  drive(part);

  ASSERT_EQ(golden.sink().times.size(),
            static_cast<std::size_t>(kPackets));
  ASSERT_EQ(part.sink().times, golden.sink().times);  // bit-identical
  EXPECT_EQ(part.sink().bytes, golden.sink().bytes);
  EXPECT_EQ(part.net.delivered_count(), golden.net.delivered_count());

  // Every packet crossed the B->C boundary exactly once, through the
  // ring, with nothing left in flight.
  const DomainRuntime* drt = part.net.domain_runtime();
  std::uint64_t out = 0;
  std::uint64_t in = 0;
  for (std::uint32_t dom = 0; dom < drt->domain_count(); ++dom) {
    out += drt->counters(dom).handoffs_out;
    in += drt->counters(dom).handoffs_in;
  }
  EXPECT_EQ(out, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(in, static_cast<std::uint64_t>(kPackets));
}

TEST(DomainPartition, FreeRunningDeliversTheSameArrivals) {
  const int kPackets = 8;
  auto drive = [&](LineRig& rig) {
    for (int i = 0; i < kPackets; ++i) {
      rig.net.inject(rig.a, sized_packet(64 + 8 * i));
    }
    rig.net.run();
  };

  LineRig golden(1e-3, 2e-3, 3e-3);
  drive(golden);

  LineRig part(1e-3, 2e-3, 3e-3);
  ASSERT_TRUE(part.net.partition(2, SyncMode::kFree));
  drive(part);

  // The sink's domain executes sequentially, so the arrival sequence —
  // not just the multiset — must match the golden run.
  EXPECT_EQ(part.sink().times, golden.sink().times);
  EXPECT_EQ(part.net.delivered_count(), golden.net.delivered_count());
  const DomainRuntime* drt = part.net.domain_runtime();
  std::uint64_t windows = 0;
  for (std::uint32_t dom = 0; dom < drt->domain_count(); ++dom) {
    windows += drt->counters(dom).windows;
  }
  EXPECT_GT(windows, 0u);
}

TEST(DomainPartition, SteadyStateCrossingsDoNotGrowThePools) {
  // Inject in two batches: the pool high-water after the first batch
  // must absorb the second (same offered load ⇒ no new allocations).
  LineRig rig(1e-3, 1e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  for (int i = 0; i < 4; ++i) {
    rig.net.inject(rig.a, sized_packet(64));
  }
  rig.net.run();
  const auto first = rig.net.domain_runtime()->pool_stats().high_water;
  for (int i = 0; i < 4; ++i) {
    rig.net.inject(rig.a, sized_packet(64));
  }
  rig.net.run();
  EXPECT_EQ(rig.net.domain_runtime()->pool_stats().high_water, first);
  EXPECT_EQ(rig.sink().times.size(), 8u);
}

// --- observability: trace golden & phase profiler ---------------------

// The hop tracer promises deterministic serialization: only sim-times,
// deterministic trace ids, and topology indices appear in the output.
// Under the deterministic merge the partitioned run executes the same
// events in the same global order as the unpartitioned simulator, so
// the merged multi-domain trace must be byte-identical to the golden
// single-queue trace — not merely equivalent.
TEST(DomainPartition, DeterministicTraceMatchesUnpartitionedByteForByte) {
  const char* kBody = R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 2ms
lsp 10.1.0.0/16 A B C
flow cbr 1 A 10.1.0.5 interval=7ms stop=0.0699
flow cbr 2 A 10.1.0.9 size=300 interval=11ms stop=0.0659
run 0.2
)";
  auto run_traced = [&](const std::string& prefix,
                        const std::string& path) {
    const auto result = core::ScenarioRunner::run_text(
        prefix + "trace " + path + "\n" + kBody);
    EXPECT_TRUE(
        std::holds_alternative<core::ScenarioRunner::Report>(result))
        << std::get<ScenarioError>(result).message;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };

  const std::string golden = run_traced("", "dp_trace_golden.json");
  const std::string merged = run_traced("domains 2\nsync deterministic\n",
                                        "dp_trace_merged.json");
  ASSERT_FALSE(golden.empty());
  EXPECT_NE(golden.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(merged, golden);
}

// Free-running workers bracket every loop phase with the same clock
// reads that bound wall_ns, so dispatch + search + handoff + barrier
// must tile the worker's wall time: anything the profiler cannot
// attribute is loop bookkeeping between adjacent timestamps.  The
// acceptance bar is >= 95% attribution on every domain of an 8-way
// free-mode run.
TEST(DomainPartition, FreeModeProfilerAttributesTheWallTime) {
  Network net;
  constexpr std::uint32_t kDomains = 8;
  constexpr NodeId kNodes = 16;  // two per domain under the block map
  std::vector<NodeId> chain;
  for (NodeId i = 0; i < kNodes - 1; ++i) {
    chain.push_back(net.add_node(std::make_unique<RelayNode>(
        "R" + std::to_string(i), i == 0 ? 0 : 1)));
  }
  chain.push_back(net.add_node(std::make_unique<SinkNode>("S")));
  for (NodeId i = 0; i + 1 < kNodes; ++i) {
    net.connect(chain[i], chain[i + 1], 1e6, 1e-3);
  }
  ASSERT_TRUE(net.partition(kDomains, SyncMode::kFree));
  DomainRuntime* drt = net.domain_runtime();
  drt->enable_profiling(true);
  ASSERT_TRUE(drt->profiling());

  const int kPackets = 64;
  for (int i = 0; i < kPackets; ++i) {
    net.inject(chain[0], sized_packet(64 + (i % 7) * 16));
  }
  net.run();
  ASSERT_EQ(net.node_as<SinkNode>(chain.back()).times.size(),
            static_cast<std::size_t>(kPackets));

  for (std::uint32_t d = 0; d < kDomains; ++d) {
    const DomainRuntime::PhaseProfile& p = drt->profile(d);
    ASSERT_GT(p.wall_ns, 0u) << "domain " << d;
    const std::uint64_t attributed =
        p.dispatch_ns + p.search_ns + p.handoff_ns + p.barrier_ns;
    EXPECT_GE(static_cast<double>(attributed),
              0.95 * static_cast<double>(p.wall_ns))
        << "domain " << d << ": dispatch=" << p.dispatch_ns
        << " search=" << p.search_ns << " handoff=" << p.handoff_ns
        << " barrier=" << p.barrier_ns << " wall=" << p.wall_ns;
  }

  // The profile surfaces as empls_domain_profile_* counters plus a
  // utilization gauge, one label set per domain, only while armed.
  obs::MetricsRegistry reg;
  net.export_metrics(reg);
  const auto* wall3 =
      reg.find_counter("empls_domain_profile_wall_ns_total", "domain=\"3\"");
  ASSERT_NE(wall3, nullptr);
  EXPECT_EQ(wall3->value(), drt->profile(3).wall_ns);
  const auto* util0 =
      reg.find_gauge("empls_domain_window_utilization", "domain=\"0\"");
  ASSERT_NE(util0, nullptr);
  EXPECT_GE(util0->value(), 0.0);
  EXPECT_LE(util0->value(), 1.0);

  drt->enable_profiling(false);
  obs::MetricsRegistry off;
  net.export_metrics(off);
  EXPECT_EQ(off.find_counter("empls_domain_profile_wall_ns_total",
                             "domain=\"3\""),
            nullptr);
}

// --- satellite: sim-counter snapshot consolidation --------------------

TEST(SimMetrics, ClampAndRebuildCountersExportedNotFingerprinted) {
  Network net;
  const NodeId a = net.add_node(std::make_unique<RelayNode>("A", 0));
  const NodeId b = net.add_node(std::make_unique<SinkNode>("B"));
  net.connect(a, b, 1e6, 1e-3);
  net.events().set_scheduler(SchedulerBackend::kCalendar);
  // Spread enough events to force at least one calendar bucket-array
  // rebuild, then schedule into the past to force a clamp.
  for (int i = 0; i < 4096; ++i) {
    net.events().schedule_at(i * 1e-4, [] {});
  }
  net.run();
  net.events().schedule_at(-1.0, [] {});
  net.run();
  net.inject(a, sized_packet(64));
  net.run();

  obs::MetricsRegistry reg;
  net.export_metrics(reg);
  const auto* clamped = reg.find_counter("empls_sim_clamped_schedules_total");
  const auto* rebuilds = reg.find_counter("empls_sim_calendar_rebuilds_total");
  ASSERT_NE(clamped, nullptr);
  ASSERT_NE(rebuilds, nullptr);
  EXPECT_GE(clamped->value(), 1u);
  EXPECT_GE(rebuilds->value(), 1u);
  const SimStats sim = net.sim_stats();
  EXPECT_EQ(sim.clamped_schedules, clamped->value());
  EXPECT_EQ(sim.calendar_rebuilds, rebuilds->value());
  // The summary doubles as the cross-backend differential fingerprint:
  // the backend-specific rebuild counter must stay out of it.
  EXPECT_EQ(sim.summary().find("rebuilds"), std::string::npos);
  EXPECT_NE(sim.summary().find("clamped="), std::string::npos);
}

TEST(SimMetrics, PerDomainCountersExportedUnderPartition) {
  LineRig rig(1e-3, 1e-3, 1e-3);
  ASSERT_TRUE(rig.net.partition(2, SyncMode::kDeterministic));
  rig.net.inject(rig.a, sized_packet(64));
  rig.net.run();
  obs::MetricsRegistry reg;
  rig.net.export_metrics(reg);
  const auto* count = reg.find_gauge("empls_domain_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value(), 2.0);
  const auto* out0 =
      reg.find_counter("empls_domain_handoffs_out_total", "domain=\"0\"");
  const auto* in1 =
      reg.find_counter("empls_domain_handoffs_in_total", "domain=\"1\"");
  ASSERT_NE(out0, nullptr);
  ASSERT_NE(in1, nullptr);
  EXPECT_EQ(out0->value(), 1u);
  EXPECT_EQ(in1->value(), 1u);
}

}  // namespace
}  // namespace empls::net
