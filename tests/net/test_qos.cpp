// Unit tests for the CoS queue set: classification, strict priority,
// weighted round robin, tail drop, RED, and statistics.
#include <gtest/gtest.h>

#include "net/qos.hpp"

namespace empls::net {
namespace {

mpls::Packet packet(unsigned cos, bool labeled = false) {
  mpls::Packet p;
  p.cos = static_cast<std::uint8_t>(cos);
  if (labeled) {
    p.stack.push(mpls::LabelEntry{100, static_cast<std::uint8_t>(cos), false,
                                  64});
  }
  return p;
}

TEST(CosQueueSet, EffectiveCosPrefersTopLabel) {
  mpls::Packet p = packet(2);
  EXPECT_EQ(CosQueueSet::effective_cos(p), 2u);
  p.stack.push(mpls::LabelEntry{1, 6, false, 64});
  EXPECT_EQ(CosQueueSet::effective_cos(p), 6u)
      << "the label's CoS bits govern scheduling inside the MPLS domain";
}

TEST(CosQueueSet, StrictPriorityDrainsHighFirst) {
  CosQueueSet q;
  ASSERT_TRUE(q.enqueue(packet(1)));
  ASSERT_TRUE(q.enqueue(packet(7)));
  ASSERT_TRUE(q.enqueue(packet(4)));
  EXPECT_EQ(CosQueueSet::effective_cos(*q.dequeue()), 7u);
  EXPECT_EQ(CosQueueSet::effective_cos(*q.dequeue()), 4u);
  EXPECT_EQ(CosQueueSet::effective_cos(*q.dequeue()), 1u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(CosQueueSet, FifoIgnoresCos) {
  QosConfig cfg;
  cfg.scheduler = SchedulerKind::kFifo;
  CosQueueSet q(cfg);
  q.enqueue(packet(1));
  q.enqueue(packet(7));
  q.enqueue(packet(4));
  EXPECT_EQ(CosQueueSet::effective_cos(*q.dequeue()), 1u);
  EXPECT_EQ(CosQueueSet::effective_cos(*q.dequeue()), 7u);
  EXPECT_EQ(CosQueueSet::effective_cos(*q.dequeue()), 4u);
}

TEST(CosQueueSet, TailDropAtCapacity) {
  QosConfig cfg;
  cfg.queue_capacity = 2;
  CosQueueSet q(cfg);
  EXPECT_TRUE(q.enqueue(packet(3)));
  EXPECT_TRUE(q.enqueue(packet(3)));
  EXPECT_FALSE(q.enqueue(packet(3))) << "queue 3 full";
  EXPECT_TRUE(q.enqueue(packet(4))) << "other queues unaffected";
  EXPECT_EQ(q.stats(3).dropped, 1u);
  EXPECT_EQ(q.stats(3).enqueued, 2u);
}

TEST(CosQueueSet, WrrRespectsWeightsUnderBacklog) {
  QosConfig cfg;
  cfg.scheduler = SchedulerKind::kWeightedRoundRobin;
  cfg.wrr_weights = {1, 1, 1, 1, 1, 1, 1, 3};  // CoS 7 gets 3x service
  cfg.queue_capacity = 256;
  CosQueueSet q(cfg);
  for (int i = 0; i < 90; ++i) {
    ASSERT_TRUE(q.enqueue(packet(7)));
    if (i < 30) {
      ASSERT_TRUE(q.enqueue(packet(0)));
    }
  }
  // Dequeue 40: expect roughly 3:1 service between CoS 7 and CoS 0.
  int hi = 0;
  int lo = 0;
  for (int i = 0; i < 40; ++i) {
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    (CosQueueSet::effective_cos(*p) == 7 ? hi : lo)++;
  }
  EXPECT_EQ(hi, 30);
  EXPECT_EQ(lo, 10);
}

TEST(CosQueueSet, WrrIsWorkConserving) {
  QosConfig cfg;
  cfg.scheduler = SchedulerKind::kWeightedRoundRobin;
  CosQueueSet q(cfg);
  q.enqueue(packet(2));
  EXPECT_TRUE(q.dequeue().has_value())
      << "a lone backlogged queue is served regardless of cursor position";
  EXPECT_TRUE(q.empty());
}

TEST(CosQueueSet, RedDropsProbabilisticallyAboveMinThreshold) {
  QosConfig cfg;
  cfg.drop = DropPolicy::kRed;
  cfg.queue_capacity = 100;
  cfg.red_min_fraction = 0.2;
  cfg.red_max_fraction = 0.8;
  cfg.red_max_drop_probability = 0.5;
  CosQueueSet q(cfg);
  int dropped = 0;
  for (int i = 0; i < 100; ++i) {
    if (!q.enqueue(packet(0))) {
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 0) << "RED must drop before the hard limit";
  EXPECT_LT(q.size(), 81u) << "nothing admitted above max threshold";
  EXPECT_GE(q.size(), 20u) << "nothing dropped below min threshold";
  EXPECT_EQ(q.total_stats().dropped, static_cast<std::uint64_t>(dropped));
}

class WrrFairness : public ::testing::TestWithParam<unsigned> {};

TEST_P(WrrFairness, LongRunThroughputTracksWeights) {
  // Property: under permanent backlog, per-class service shares converge
  // to the configured weights for arbitrary weight vectors.
  std::mt19937 rng(GetParam());
  QosConfig cfg;
  cfg.scheduler = SchedulerKind::kWeightedRoundRobin;
  cfg.queue_capacity = 100000;
  for (auto& w : cfg.wrr_weights) {
    w = 1 + rng() % 7;
  }
  CosQueueSet q(cfg);

  // Keep all queues permanently backlogged while dequeuing.
  unsigned served[8] = {};
  unsigned total_served = 0;
  for (int round = 0; round < 20000; ++round) {
    for (unsigned cos = 0; cos < 8; ++cos) {
      while (q.size(cos) < 4) {
        ASSERT_TRUE(q.enqueue(packet(cos)));
      }
    }
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    ++served[CosQueueSet::effective_cos(*p)];
    ++total_served;
  }
  unsigned weight_sum = 0;
  for (const auto w : cfg.wrr_weights) {
    weight_sum += w;
  }
  for (unsigned cos = 0; cos < 8; ++cos) {
    const double expect =
        static_cast<double>(cfg.wrr_weights[cos]) / weight_sum;
    const double got =
        static_cast<double>(served[cos]) / total_served;
    EXPECT_NEAR(got, expect, 0.01)
        << "cos " << cos << " weight " << cfg.wrr_weights[cos];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WrrFairness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CosQueueSet, StatsAccounting) {
  CosQueueSet q;
  q.enqueue(packet(5));
  q.enqueue(packet(5));
  q.dequeue();
  EXPECT_EQ(q.stats(5).enqueued, 2u);
  EXPECT_EQ(q.stats(5).dequeued, 1u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.size(5), 1u);
  const auto total = q.total_stats();
  EXPECT_EQ(total.enqueued, 2u);
  EXPECT_EQ(total.dequeued, 1u);
}

TEST(CosQueueSet, LabeledPacketQueuesByLabelCos) {
  CosQueueSet q;
  q.enqueue(packet(1, /*labeled=*/true));  // label CoS 1
  mpls::Packet high = packet(0);
  high.stack.push(mpls::LabelEntry{5, 7, false, 64});
  q.enqueue(std::move(high));
  EXPECT_EQ(q.dequeue()->stack.top().cos, 7u);
}

}  // namespace
}  // namespace empls::net
