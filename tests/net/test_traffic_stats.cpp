// Unit tests for traffic generators and the measurement helpers.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"

namespace empls::net {
namespace {

/// Counts injected packets and immediately "delivers" them back to the
/// stats collector after a fixed latency.
class EchoNode : public Node {
 public:
  EchoNode(std::string name, FlowStats* stats, SimTime latency)
      : Node(std::move(name)), stats_(stats), latency_(latency) {}
  void receive(PacketHandle packet, mpls::InterfaceId) override {
    ++received;
    auto* net = network();
    net->events().schedule_in(latency_, [this, net,
                                         p = std::move(packet)]() mutable {
      stats_->on_delivered(*p, net->now());
    });
  }
  std::uint64_t received = 0;

 private:
  FlowStats* stats_;
  SimTime latency_;
};

struct Rig {
  Network net;
  FlowStats stats;
  NodeId echo;
  explicit Rig(SimTime latency = 1e-3) {
    echo = net.add_node(std::make_unique<EchoNode>("echo", &stats, latency));
  }
  FlowSpec spec(std::uint32_t id, SimTime start, SimTime stop) {
    FlowSpec s;
    s.flow_id = id;
    s.ingress = echo;
    s.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 1);
    s.payload_bytes = 100;
    s.start = start;
    s.stop = stop;
    return s;
  }
};

TEST(CbrSource, EmitsAtFixedInterval) {
  Rig rig;
  CbrSource src(rig.net, rig.spec(1, 0.0, 0.0999), &rig.stats, 10e-3);
  src.start();
  rig.net.run();
  EXPECT_EQ(src.packets_sent(), 10u);
  EXPECT_EQ(rig.stats.flow(1).sent, 10u);
  EXPECT_EQ(rig.stats.flow(1).delivered, 10u);
}

TEST(CbrSource, HonoursStartTime) {
  Rig rig;
  CbrSource src(rig.net, rig.spec(1, 0.5, 0.5999), &rig.stats, 100e-3);
  src.start();
  rig.net.run_until(0.4);
  EXPECT_EQ(src.packets_sent(), 0u);
  rig.net.run();
  EXPECT_EQ(src.packets_sent(), 1u);
}

TEST(PoissonSource, MeanRateIsApproximatelyRight) {
  Rig rig;
  PoissonSource src(rig.net, rig.spec(2, 0.0, 10.0), &rig.stats, 500.0, 99);
  src.start();
  rig.net.run();
  // 10 s at 500 pps: expect ~5000 +- 5 sigma (~354).
  EXPECT_GT(src.packets_sent(), 4600u);
  EXPECT_LT(src.packets_sent(), 5400u);
}

TEST(VideoSource, EmitsFramesOfPackets) {
  Rig rig;
  VideoSource src(rig.net, rig.spec(3, 0.0, 0.0999), &rig.stats, 33e-3, 8);
  src.start();
  rig.net.run();
  // Frames at 0, 33, 66, 99 ms -> 4 frames x 8 packets.
  EXPECT_EQ(src.packets_sent(), 32u);
}

TEST(OnOffSource, AlternatesBurstsAndSilence) {
  Rig rig;
  OnOffSource src(rig.net, rig.spec(4, 0.0, 5.0), &rig.stats, 1000.0,
                  /*mean_on=*/50e-3, /*mean_off=*/50e-3, 7);
  src.start();
  rig.net.run();
  // ~50% duty cycle at 1000 pps over 5 s: well below the always-on 5000
  // but clearly nonzero.
  EXPECT_GT(src.packets_sent(), 1000u);
  EXPECT_LT(src.packets_sent(), 4200u);
}

TEST(TrafficSource, StampsPacketMetadata) {
  Rig rig;
  auto spec = rig.spec(9, 0.0, 0.001);
  spec.cos = 6;
  spec.src = mpls::Ipv4Address::from_octets(1, 2, 3, 4);
  CbrSource src(rig.net, spec, &rig.stats, 10e-3);
  src.start();
  rig.net.run();
  ASSERT_EQ(rig.stats.flow(9).delivered, 1u);
  EXPECT_DOUBLE_EQ(rig.stats.flow(9).latency.mean(), 1e-3)
      << "created_at stamped at injection, delivered 1 ms later";
}

TEST(LatencyStats, ExactStatistics) {
  LatencyStats s;
  EXPECT_EQ(s.percentile(0.5), 0.0);
  for (const double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.record(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(LatencyStats, RecordAfterPercentileKeepsOrder) {
  LatencyStats s;
  s.record(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 2.0);
  s.record(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0) << "re-sorts after new samples";
}

TEST(FlowStats, JitterTracksTransitVariation) {
  FlowStats fs;
  mpls::Packet p;
  p.flow_id = 1;
  // Constant transit time: jitter stays zero.
  for (int i = 0; i < 10; ++i) {
    p.created_at = i * 0.020;
    fs.on_delivered(p, p.created_at + 0.005);
  }
  EXPECT_NEAR(fs.flow(1).jitter, 0.0, 1e-12);  // FP rounding of transit deltas

  // Alternating transit (5 ms / 9 ms): jitter converges toward the
  // 4 ms swing (RFC 3550 smoothing, gain 1/16).
  FlowStats fs2;
  p.flow_id = 2;
  for (int i = 0; i < 400; ++i) {
    p.created_at = i * 0.020;
    fs2.on_delivered(p, p.created_at + (i % 2 == 0 ? 0.005 : 0.009));
  }
  EXPECT_NEAR(fs2.flow(2).jitter, 0.004, 0.0005);
  EXPECT_NE(fs2.summary().find("jitter="), std::string::npos);
}

TEST(FlowStats, LossRateAndSummary) {
  FlowStats fs;
  mpls::Packet p;
  p.flow_id = 3;
  p.created_at = 0.0;
  for (int i = 0; i < 4; ++i) {
    fs.on_sent(p);
  }
  fs.on_delivered(p, 0.010);
  EXPECT_DOUBLE_EQ(fs.flow(3).loss_rate(), 0.75);
  EXPECT_EQ(fs.total_sent(), 4u);
  EXPECT_EQ(fs.total_delivered(), 1u);
  EXPECT_NE(fs.summary().find("flow 3"), std::string::npos);
}

}  // namespace
}  // namespace empls::net
