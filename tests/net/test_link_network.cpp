// Unit tests for links and the network fabric: transmission timing,
// propagation, serialisation under backlog, topology bookkeeping and
// delivery dispatch.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"

namespace empls::net {
namespace {

/// Records every packet it receives with its arrival time.
class SinkNode : public Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void receive(PacketHandle packet, mpls::InterfaceId in_if) override {
    arrivals.emplace_back(network()->now(), in_if, std::move(*packet));
  }
  struct Arrival {
    SimTime time;
    mpls::InterfaceId in_if;
    mpls::Packet packet;
    Arrival(SimTime t, mpls::InterfaceId i, mpls::Packet p)
        : time(t), in_if(i), packet(std::move(p)) {}
  };
  std::vector<Arrival> arrivals;
};

/// Forwards injected packets out of port 0.
class ForwardNode : public Node {
 public:
  explicit ForwardNode(std::string name) : Node(std::move(name)) {}
  void receive(PacketHandle packet, mpls::InterfaceId in_if) override {
    if (in_if == kInjectInterface) {
      send(std::move(packet), 0);
    }
  }
};

mpls::Packet sized_packet(std::size_t payload) {
  mpls::Packet p;
  p.payload.assign(payload, 0);
  return p;
}

struct Rig {
  Network net;
  NodeId a;
  NodeId b;
  Rig(double bw, SimTime delay) {
    a = net.add_node(std::make_unique<ForwardNode>("A"));
    b = net.add_node(std::make_unique<SinkNode>("B"));
    net.connect(a, b, bw, delay);
  }
  SinkNode& sink() { return net.node_as<SinkNode>(b); }
};

TEST(Link, LatencyIsTransmissionPlusPropagation) {
  // 84-byte packet (16B header + 68B payload) at 1 Mb/s = 672 us;
  // propagation 100 us; total 772 us.
  Rig rig(1e6, 100e-6);
  rig.net.inject(rig.a, sized_packet(68));
  rig.net.run();
  ASSERT_EQ(rig.sink().arrivals.size(), 1u);
  EXPECT_NEAR(rig.sink().arrivals[0].time, 772e-6, 1e-9);
}

TEST(Link, BacklogSerialises) {
  Rig rig(1e6, 0.0);
  // Three equal packets injected at t=0: arrivals at 1, 2, 3 tx-times.
  for (int i = 0; i < 3; ++i) {
    rig.net.inject(rig.a, sized_packet(109));  // 125 B = 1 ms at 1 Mb/s
  }
  rig.net.run();
  ASSERT_EQ(rig.sink().arrivals.size(), 3u);
  EXPECT_NEAR(rig.sink().arrivals[0].time, 1e-3, 1e-9);
  EXPECT_NEAR(rig.sink().arrivals[1].time, 2e-3, 1e-9);
  EXPECT_NEAR(rig.sink().arrivals[2].time, 3e-3, 1e-9);
}

TEST(Link, StatsAndUtilization) {
  Rig rig(1e6, 0.0);
  rig.net.inject(rig.a, sized_packet(109));
  rig.net.run();
  const Link& link = rig.net.link_from(rig.a, 0);
  EXPECT_EQ(link.stats().tx_packets, 1u);
  EXPECT_EQ(link.stats().tx_bytes, 125u);
  EXPECT_NEAR(link.stats().busy_time, 1e-3, 1e-9);
  EXPECT_NEAR(link.utilization(), 1.0, 1e-6)
      << "the link was busy for the entire run";
}

TEST(Link, QueueOverflowDropsAreCounted) {
  QosConfig qos;
  qos.queue_capacity = 2;
  Network net(qos);
  const auto a = net.add_node(std::make_unique<ForwardNode>("A"));
  const auto b = net.add_node(std::make_unique<SinkNode>("B"));
  net.connect(a, b, 1e6, 0.0);
  // 1 in flight + 2 queued + 2 dropped.
  for (int i = 0; i < 5; ++i) {
    net.inject(a, sized_packet(109));
  }
  net.run();
  EXPECT_EQ(net.node_as<SinkNode>(b).arrivals.size(), 3u);
  EXPECT_EQ(net.link_from(a, 0).queue().total_stats().dropped, 2u);
}

TEST(Network, ConnectCreatesSymmetricPorts) {
  Network net;
  const auto a = net.add_node(std::make_unique<SinkNode>("A"));
  const auto b = net.add_node(std::make_unique<SinkNode>("B"));
  const auto c = net.add_node(std::make_unique<SinkNode>("C"));
  const auto ab = net.connect(a, b, 1e6, 1e-3);
  const auto ac = net.connect(a, c, 2e6, 2e-3);
  EXPECT_EQ(ab.a_to_b, 0u);
  EXPECT_EQ(ab.b_to_a, 0u);
  EXPECT_EQ(ac.a_to_b, 1u) << "second port on a";
  EXPECT_EQ(ac.b_to_a, 0u) << "first port on c";
  EXPECT_EQ(net.node(a).num_ports(), 2u);

  const auto& adj = net.adjacency(a);
  ASSERT_EQ(adj.size(), 2u);
  EXPECT_EQ(adj[0].neighbor, b);
  EXPECT_EQ(adj[1].neighbor, c);
  EXPECT_DOUBLE_EQ(adj[1].bandwidth_bps, 2e6);
  EXPECT_EQ(net.adjacency(b).size(), 1u);
}

TEST(Network, InterfaceNumbersSeenByReceiver) {
  // B receives from A on the port B would use to send back to A.
  Network net;
  const auto a = net.add_node(std::make_unique<ForwardNode>("A"));
  const auto x = net.add_node(std::make_unique<SinkNode>("X"));
  const auto b = net.add_node(std::make_unique<SinkNode>("B"));
  net.connect(b, x, 1e6, 0.0);  // b port 0 goes to x
  net.connect(a, b, 1e6, 0.0);  // b port 1 goes to a
  net.inject(a, sized_packet(10));
  net.run();
  auto& sink = net.node_as<SinkNode>(b);
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].in_if, 1u);
}

TEST(Network, DeliveryHandlerAndCount) {
  Network net;
  const auto a = net.add_node(std::make_unique<SinkNode>("A"));
  NodeId seen_node = 9999;
  net.set_delivery_handler(
      [&](NodeId id, const mpls::Packet&) { seen_node = id; });
  net.deliver_local(a, mpls::Packet());
  EXPECT_EQ(seen_node, a);
  EXPECT_EQ(net.delivered_count(), 1u);
}

}  // namespace
}  // namespace empls::net
