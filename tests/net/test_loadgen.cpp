// Tests for open-loop traffic generation at scale: arrival processes,
// Pareto flow churn over flat slots, and exact flow conservation
// through the FlowLedger + DropAccountant pair.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/fault_injector.hpp"
#include "net/ldp.hpp"
#include "net/loadgen.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowLedger ledger;
  DropAccountant drops{net};
  NodeId ler, egress;

  explicit Rig(double link_bps = 100e6) {
    auto add = [&](const char* name, hw::RouterType type) {
      core::RouterConfig cfg;
      cfg.type = type;
      auto r = std::make_unique<core::EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), cfg);
      auto* raw = r.get();
      const auto id = net.add_node(std::move(r));
      cp.register_router(id, &raw->routing());
      return id;
    };
    ler = add("LER", hw::RouterType::kLer);
    egress = add("EGR", hw::RouterType::kLer);
    net.connect(ler, egress, link_bps, 1e-3);
    cp.establish_lsp({ler, egress}, *mpls::Prefix::parse("10.1.0.0/16"));
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      ledger.on_delivered(p.flow_id, net.now() - p.created_at);
    });
  }

  LoadGenConfig base_config() const {
    LoadGenConfig cfg;
    cfg.ingress = ler;
    cfg.dst = *mpls::Ipv4Address::parse("10.1.0.5");
    cfg.rate_pps = 5000;
    cfg.concurrent_flows = 64;
    cfg.seed = 7;
    cfg.stop = 1.0;
    return cfg;
  }
};

TEST(OpenLoopGenerator, PoissonOfferedLoadMatchesTheRate) {
  Rig rig;
  OpenLoopGenerator gen(rig.net, rig.base_config(), &rig.ledger);
  gen.start();
  rig.net.run();
  // 5000 pps over 1 s; Poisson sd is ~70, so ±10% is generous.
  EXPECT_GT(gen.stats().packets_sent, 4500u);
  EXPECT_LT(gen.stats().packets_sent, 5500u);
  EXPECT_EQ(gen.stats().packets_sent, rig.ledger.sent_total());
}

TEST(OpenLoopGenerator, SameSeedReproducesTheRunExactly) {
  Rig a;
  Rig b;
  OpenLoopGenerator ga(a.net, a.base_config(), &a.ledger);
  OpenLoopGenerator gb(b.net, b.base_config(), &b.ledger);
  ga.start();
  gb.start();
  a.net.run();
  b.net.run();
  EXPECT_EQ(ga.stats().packets_sent, gb.stats().packets_sent);
  EXPECT_EQ(ga.stats().flows_started, gb.stats().flows_started);
  EXPECT_EQ(ga.stats().flows_completed, gb.stats().flows_completed);
  EXPECT_EQ(a.ledger.delivered_total(), b.ledger.delivered_total());
}

TEST(OpenLoopGenerator, ParetoChurnRecyclesSlotsWithinTheIdBlock) {
  Rig rig;
  auto cfg = rig.base_config();
  cfg.pareto_min_packets = 2;  // mice everywhere → heavy churn
  cfg.pareto_alpha = 2.0;
  OpenLoopGenerator gen(rig.net, cfg, &rig.ledger);
  gen.start();
  rig.net.run();
  // All 64 slots start a flow up front; churn must replace many of them.
  EXPECT_GT(gen.stats().flows_completed, 100u);
  EXPECT_EQ(gen.stats().flows_started,
            gen.stats().flows_completed + cfg.concurrent_flows);
  // Every flow id the ledger saw stays inside the generator's block
  // (4096 ids cover the churn: ≤ ~2500 flows of ≥ 2 packets each).
  std::uint64_t mass = 0;
  for (std::uint32_t f = gen.flow_id_lo(); f < gen.flow_id_lo() + 4096;
       ++f) {
    mass += rig.ledger.sent(f);
  }
  EXPECT_EQ(mass, rig.ledger.sent_total())
      << "ids escaped the generator's block";
}

TEST(OpenLoopGenerator, MmppModulatesBetweenBaseAndBurst) {
  Rig rig;
  auto cfg = rig.base_config();
  cfg.arrivals = LoadGenConfig::Arrivals::kMmpp;
  cfg.rate_pps = 2000;
  cfg.burst_rate_pps = 20000;
  cfg.mean_sojourn = 50e-3;
  OpenLoopGenerator gen(rig.net, cfg, &rig.ledger);
  gen.start();
  rig.net.run();
  EXPECT_GT(gen.stats().state_switches, 5u) << "~20 sojourns in 1 s";
  // Mean rate sits strictly between the two states (≈11 kpps here).
  EXPECT_GT(gen.stats().packets_sent, 3000u);
  EXPECT_LT(gen.stats().packets_sent, 20000u);
}

TEST(OpenLoopGenerator, ConservationHoldsExactlyThroughCongestion) {
  Rig rig(2e6);  // 2 Mb/s link: ~11 kpps offered over ~1.4 kpps drained
  auto cfg = rig.base_config();
  cfg.rate_pps = 11000;
  OpenLoopGenerator gen(rig.net, cfg, &rig.ledger);
  gen.start();
  rig.net.run();
  EXPECT_GT(rig.drops.total(), 0u) << "the link must actually congest";
  EXPECT_LT(rig.ledger.delivered_total(), rig.ledger.sent_total());
  // Books balance per flow: sent == delivered + attributed drops.
  EXPECT_TRUE(rig.ledger.conserved(rig.drops));
  EXPECT_EQ(rig.ledger.sent_total(),
            rig.ledger.delivered_total() +
                rig.drops.drops_in_range(kLoadGenFlowBase, kAttackFlowBase));
}

TEST(FlowLedger, QuantilesComeFromTheLatencyHistogram) {
  FlowLedger ledger;
  for (int i = 0; i < 90; ++i) {
    ledger.on_delivered(kLoadGenFlowBase, 1e-3);  // 1 ms
  }
  for (int i = 0; i < 10; ++i) {
    ledger.on_delivered(kLoadGenFlowBase, 1.0);  // slow tail
  }
  EXPECT_EQ(ledger.delivered_total(), 100u);
  EXPECT_LT(ledger.latency_quantile_s(0.5), 5e-3);
  EXPECT_GT(ledger.latency_quantile_s(0.999), 0.5);
}

}  // namespace
}  // namespace empls::net
