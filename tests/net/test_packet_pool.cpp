// Unit tests for the slab packet pool and its move-only handle: freelist
// recycling, buffer-capacity reuse, stats, and end-to-end pool flow
// through a forwarding network.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/packet_pool.hpp"
#include "net/traffic.hpp"

namespace empls::net {
namespace {

TEST(PacketPool, AcquireGivesDefaultStatePacket) {
  PacketPool pool;
  auto p = pool.acquire();
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->stack.empty());
  EXPECT_TRUE(p->payload.empty());
  EXPECT_EQ(p->ip_ttl, 64);
  EXPECT_EQ(pool.stats().in_use, 1u);
}

TEST(PacketPool, ReleaseRecyclesTheSameSlot) {
  PacketPool pool;
  mpls::Packet* first;
  {
    auto p = pool.acquire();
    first = p.get();
    p->payload.assign(512, 0xCD);
  }  // handle destruction releases back to the pool
  EXPECT_EQ(pool.stats().in_use, 0u);

  auto q = pool.acquire();
  EXPECT_EQ(q.get(), first) << "freelist hands the hot slot back";
  EXPECT_EQ(pool.stats().recycled, 1u);
  EXPECT_TRUE(q->payload.empty()) << "recycled packet is field-reset";
  EXPECT_GE(q->payload.capacity(), 512u)
      << "but the payload buffer capacity survives recycling";
}

TEST(PacketPool, HighWaterTracksPeakConcurrency) {
  PacketPool pool(4);
  std::vector<PacketHandle> held;
  for (int i = 0; i < 10; ++i) {
    held.push_back(pool.acquire());
  }
  held.clear();
  auto p = pool.acquire();
  EXPECT_EQ(pool.stats().high_water, 10u);
  EXPECT_EQ(pool.stats().in_use, 1u);
  EXPECT_GE(pool.stats().capacity, 10u) << "slabs grew to cover the peak";
}

TEST(PacketPool, WarmPoolStopsGrowingCapacity) {
  PacketPool pool(8);
  for (int round = 0; round < 3; ++round) {
    std::vector<PacketHandle> held;
    for (int i = 0; i < 8; ++i) {
      held.push_back(pool.acquire());
    }
  }
  EXPECT_EQ(pool.stats().capacity, 8u)
      << "steady-state reuse never carves another slab";
  // Only the very first acquire carved; everything after came off the
  // freelist (a fresh slab pre-loads it, so those count as hits too).
  EXPECT_EQ(pool.stats().recycled, pool.stats().acquired - 1);
}

TEST(PacketPool, PoolingDisabledFallsBackToHeap) {
  PacketPool pool;
  pool.set_pooling(false);
  {
    auto p = pool.acquire();
    ASSERT_TRUE(p);
  }
  EXPECT_EQ(pool.stats().recycled, 0u);
  EXPECT_EQ(pool.stats().capacity, 0u) << "no slabs in baseline mode";
}

TEST(PacketHandle, MoveTransfersOwnership) {
  PacketPool pool;
  auto a = pool.acquire();
  mpls::Packet* raw = a.get();
  PacketHandle b = std::move(a);
  EXPECT_FALSE(a.has_value());
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(pool.stats().in_use, 1u);
}

TEST(PacketHandle, WrapsBarePacketOutsideAnyPool) {
  mpls::Packet p;
  p.cos = 5;
  PacketHandle h(std::move(p));
  ASSERT_TRUE(h);
  EXPECT_EQ(h->cos, 5);
  h.reset();
  EXPECT_FALSE(h.has_value());
}

/// Absorbs traffic so injected packets complete their pool round trip.
class NullSink : public Node {
 public:
  explicit NullSink(std::string name) : Node(std::move(name)) {}
  void receive(PacketHandle, mpls::InterfaceId) override {}
};

TEST(PacketPool, SteadyStateForwardingRecyclesEverything) {
  Network net;
  const auto a = net.add_node(std::make_unique<NullSink>("A"));

  FlowSpec spec;
  spec.flow_id = 1;
  spec.ingress = a;
  spec.dst = *mpls::Ipv4Address::parse("10.0.0.1");
  spec.payload_bytes = 200;
  spec.start = 0.0;
  spec.stop = 1.0;
  CbrSource src(net, spec, nullptr, /*interval=*/1e-3);
  src.start();
  net.run();

  const auto& stats = net.pool().stats();
  EXPECT_EQ(stats.in_use, 0u) << "every emitted packet was released";
  EXPECT_GT(stats.acquired, 100u);
  // The sink frees each packet before the next emission, so after the
  // first acquisition every packet is a freelist hit.
  EXPECT_EQ(stats.recycled, stats.acquired - 1);
  EXPECT_EQ(stats.high_water, 1u);
}

}  // namespace
}  // namespace empls::net
