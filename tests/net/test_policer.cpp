// Tests for token-bucket policing: the bucket mechanics and the ingress
// router's enforcement (drop and demote actions).
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/policer.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

TEST(TokenBucket, ConformsUpToBurstThenRefills) {
  // 8 kb/s = 1000 bytes/s; burst 500 bytes.
  TokenBucket tb(8000, 500);
  EXPECT_TRUE(tb.conforms(400, 0.0));
  EXPECT_TRUE(tb.conforms(100, 0.0)) << "exactly drains the bucket";
  EXPECT_FALSE(tb.conforms(1, 0.0)) << "empty";
  EXPECT_FALSE(tb.conforms(200, 0.1)) << "only 100 bytes refilled";
  EXPECT_TRUE(tb.conforms(100, 0.1));
  EXPECT_TRUE(tb.conforms(500, 10.0)) << "bucket caps at burst";
  EXPECT_FALSE(tb.conforms(1, 10.0));
}

TEST(TokenBucket, NonConformanceConsumesNothing) {
  TokenBucket tb(8000, 100);
  EXPECT_FALSE(tb.conforms(200, 0.0));
  EXPECT_TRUE(tb.conforms(100, 0.0)) << "tokens untouched by the refusal";
}

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;
  NodeId ler, egress;

  Rig() {
    auto add = [&](const char* name, hw::RouterType type) {
      core::RouterConfig cfg;
      cfg.type = type;
      auto r = std::make_unique<core::EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), cfg);
      auto* raw = r.get();
      const auto id = net.add_node(std::move(r));
      cp.register_router(id, &raw->routing());
      return id;
    };
    ler = add("LER", hw::RouterType::kLer);
    egress = add("EGR", hw::RouterType::kLer);
    net.connect(ler, egress, 100e6, 1e-3);
    cp.establish_lsp({ler, egress}, *mpls::Prefix::parse("10.1.0.0/16"));
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }

  core::EmbeddedRouter& router() {
    return net.node_as<core::EmbeddedRouter>(ler);
  }

  /// 100 pps CBR of 184-byte packets (payload 160 + header + shim n/a at
  /// ingress: wire = 176 B unlabeled) ≈ 141 kb/s offered.
  void run_cbr() {
    FlowSpec spec{1, ler, mpls::Ipv4Address{1},
                  *mpls::Ipv4Address::parse("10.1.0.5"), 6, 160, 0.0,
                  0.9999};
    CbrSource src(net, spec, &stats, 10e-3);
    src.start();
    net.run();
  }
};

TEST(IngressPolicing, ConformingFlowPassesUntouched) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 200e3;  // above the ~141 kb/s offered
  cfg.burst_bytes = 1500;
  rig.router().set_policer(1, cfg);
  rig.run_cbr();
  EXPECT_EQ(rig.stats.flow(1).delivered, 100u);
  EXPECT_EQ(rig.router().stats().policer_drops, 0u);
}

TEST(IngressPolicing, ExcessIsDroppedAtRoughlyTheContractRate) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 70e3;  // half the offered rate
  cfg.burst_bytes = 400;
  rig.router().set_policer(1, cfg);
  rig.run_cbr();
  const auto delivered = rig.stats.flow(1).delivered;
  // 70 kb/s / (176 B * 8) ≈ 49.7 pps of the offered 100.
  EXPECT_GE(delivered, 40u);
  EXPECT_LE(delivered, 60u);
  EXPECT_EQ(rig.router().stats().policer_drops, 100 - delivered);
}

TEST(IngressPolicing, DemoteRemarksInsteadOfDropping) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 70e3;
  cfg.burst_bytes = 400;
  cfg.action = PolicerAction::kDemote;
  rig.router().set_policer(1, cfg);

  unsigned best_effort = 0;
  unsigned priority = 0;
  rig.net.add_delivery_handler([&](NodeId, const mpls::Packet& p) {
    (p.cos == 0 ? best_effort : priority)++;
  });
  rig.run_cbr();
  EXPECT_EQ(rig.stats.flow(1).delivered, 100u) << "nothing dropped";
  EXPECT_GT(best_effort, 30u) << "excess was remarked to CoS 0";
  EXPECT_GT(priority, 30u) << "conforming share kept CoS 6";
  EXPECT_EQ(rig.router().stats().policer_demotions, best_effort);
}

TEST(IngressPolicing, UnpolicedFlowsAreUnaffected) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 1;  // draconian, but bound to flow 99
  rig.router().set_policer(99, cfg);
  rig.run_cbr();
  EXPECT_EQ(rig.stats.flow(1).delivered, 100u);
}

}  // namespace
}  // namespace empls::net
