// Tests for token-bucket policing: the bucket mechanics and the ingress
// router's enforcement (drop and demote actions).
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/loadgen.hpp"
#include "net/policer.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

TEST(TokenBucket, ConformsUpToBurstThenRefills) {
  // 8 kb/s = 1000 bytes/s; burst 500 bytes.
  TokenBucket tb(8000, 500);
  EXPECT_TRUE(tb.conforms(400, 0.0));
  EXPECT_TRUE(tb.conforms(100, 0.0)) << "exactly drains the bucket";
  EXPECT_FALSE(tb.conforms(1, 0.0)) << "empty";
  EXPECT_FALSE(tb.conforms(200, 0.1)) << "only 100 bytes refilled";
  EXPECT_TRUE(tb.conforms(100, 0.1));
  EXPECT_TRUE(tb.conforms(500, 10.0)) << "bucket caps at burst";
  EXPECT_FALSE(tb.conforms(1, 10.0));
}

TEST(TokenBucket, NonConformanceConsumesNothing) {
  TokenBucket tb(8000, 100);
  EXPECT_FALSE(tb.conforms(200, 0.0));
  EXPECT_TRUE(tb.conforms(100, 0.0)) << "tokens untouched by the refusal";
}

TEST(TokenBucket, NoDriftAtTenMillionSimulatedSeconds) {
  // Regression for accumulated refill error: probe the same bucket with
  // an identical over-subscribed pattern at t≈0 and again at t≈1e7 s
  // (where now-last_ loses ~29 bits of mantissa headroom).  The fused
  // single-update refill must admit the same share in both windows —
  // drift would skew the far window by hundreds of packets.
  const auto window = [](TokenBucket& tb, double t0) {
    unsigned admitted = 0;
    for (int i = 0; i < 10000; ++i) {
      // 10-byte probes every 7.3 ms ≈ 1370 B/s offered vs 1000 B/s rate.
      if (tb.conforms(10, t0 + i * 7.3e-3)) {
        ++admitted;
      }
    }
    return admitted;
  };
  TokenBucket tb(8000, 100);  // 1000 bytes/s, burst 100
  const auto near = window(tb, 0.0);
  const auto far = window(tb, 1e7);  // idle gap refills to burst first
  // 73 s of refill admits ~7300 probes plus the initial burst of 10.
  EXPECT_GE(near, 7300u);
  EXPECT_LE(near, 7320u);
  // ±2 tolerates an FP coin-flip at an exact token boundary, nothing
  // more.
  EXPECT_NEAR(static_cast<double>(far), static_cast<double>(near), 2.0);
}

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;
  NodeId ler, egress;

  Rig() {
    auto add = [&](const char* name, hw::RouterType type) {
      core::RouterConfig cfg;
      cfg.type = type;
      auto r = std::make_unique<core::EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), cfg);
      auto* raw = r.get();
      const auto id = net.add_node(std::move(r));
      cp.register_router(id, &raw->routing());
      return id;
    };
    ler = add("LER", hw::RouterType::kLer);
    egress = add("EGR", hw::RouterType::kLer);
    net.connect(ler, egress, 100e6, 1e-3);
    cp.establish_lsp({ler, egress}, *mpls::Prefix::parse("10.1.0.0/16"));
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }

  core::EmbeddedRouter& router() {
    return net.node_as<core::EmbeddedRouter>(ler);
  }

  /// 100 pps CBR of 184-byte packets (payload 160 + header + shim n/a at
  /// ingress: wire = 176 B unlabeled) ≈ 141 kb/s offered.
  void run_cbr() {
    FlowSpec spec{1, ler, mpls::Ipv4Address{1},
                  *mpls::Ipv4Address::parse("10.1.0.5"), 6, 160, 0.0,
                  0.9999};
    CbrSource src(net, spec, &stats, 10e-3);
    src.start();
    net.run();
  }
};

TEST(IngressPolicing, ConformingFlowPassesUntouched) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 200e3;  // above the ~141 kb/s offered
  cfg.burst_bytes = 1500;
  rig.router().set_policer(1, cfg);
  rig.run_cbr();
  EXPECT_EQ(rig.stats.flow(1).delivered, 100u);
  EXPECT_EQ(rig.router().stats().policer_drops, 0u);
}

TEST(IngressPolicing, ExcessIsDroppedAtRoughlyTheContractRate) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 70e3;  // half the offered rate
  cfg.burst_bytes = 400;
  rig.router().set_policer(1, cfg);
  rig.run_cbr();
  const auto delivered = rig.stats.flow(1).delivered;
  // 70 kb/s / (176 B * 8) ≈ 49.7 pps of the offered 100.
  EXPECT_GE(delivered, 40u);
  EXPECT_LE(delivered, 60u);
  EXPECT_EQ(rig.router().stats().policer_drops, 100 - delivered);
}

TEST(IngressPolicing, DemoteRemarksInsteadOfDropping) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 70e3;
  cfg.burst_bytes = 400;
  cfg.action = PolicerAction::kDemote;
  rig.router().set_policer(1, cfg);

  unsigned best_effort = 0;
  unsigned priority = 0;
  rig.net.add_delivery_handler([&](NodeId, const mpls::Packet& p) {
    (p.cos == 0 ? best_effort : priority)++;
  });
  rig.run_cbr();
  EXPECT_EQ(rig.stats.flow(1).delivered, 100u) << "nothing dropped";
  EXPECT_GT(best_effort, 30u) << "excess was remarked to CoS 0";
  EXPECT_GT(priority, 30u) << "conforming share kept CoS 6";
  EXPECT_EQ(rig.router().stats().policer_demotions, best_effort);
}

TEST(IngressPolicing, MmppBurstsAreDemotedThenConformAgain) {
  // Colour-aware demotion under Markov-modulated bursts: one persistent
  // open-loop flow alternates between a conforming base rate and a
  // 10x burst.  Burst excess must be remarked to best effort (lower CoS
  // queue), never dropped and never double-counted; once the burst
  // state ends the flow must conform at CoS 6 again.
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 600e3;  // base ≈282 kb/s conforms, burst ≈2.8 Mb/s not
  cfg.burst_bytes = 1500;
  cfg.action = PolicerAction::kDemote;
  rig.router().set_policer(kLoadGenFlowBase, cfg);

  std::uint64_t best_effort = 0;
  std::uint64_t priority = 0;
  double first_demoted_at = -1;
  double last_conforming_at = -1;
  rig.net.add_delivery_handler([&](NodeId, const mpls::Packet& p) {
    if (p.cos == 0) {
      ++best_effort;
      if (first_demoted_at < 0) {
        first_demoted_at = rig.net.now();
      }
    } else {
      ++priority;
      last_conforming_at = rig.net.now();
    }
  });

  LoadGenConfig gen_cfg;
  gen_cfg.arrivals = LoadGenConfig::Arrivals::kMmpp;
  gen_cfg.ingress = rig.ler;
  gen_cfg.dst = *mpls::Ipv4Address::parse("10.1.0.5");
  gen_cfg.rate_pps = 200;
  gen_cfg.burst_rate_pps = 2000;
  gen_cfg.mean_sojourn = 50e-3;
  gen_cfg.concurrent_flows = 1;
  gen_cfg.pareto_min_packets = 1000000;  // the slot never recycles
  gen_cfg.cos = 6;
  gen_cfg.seed = 3;
  OpenLoopGenerator gen(rig.net, gen_cfg, nullptr);
  gen.start();
  rig.net.run();

  const auto sent = gen.stats().packets_sent;
  ASSERT_GT(sent, 200u);
  EXPECT_EQ(best_effort + priority, sent)
      << "demotion re-marks, it never drops or duplicates";
  EXPECT_GT(best_effort, 0u) << "burst excess landed in the CoS 0 queue";
  EXPECT_GT(priority, sent / 4) << "base-state traffic kept CoS 6";
  EXPECT_EQ(rig.router().stats().policer_demotions, best_effort);
  EXPECT_EQ(rig.router().stats().policer_drops, 0u);
  EXPECT_GT(last_conforming_at, first_demoted_at)
      << "the flow conformed again after a burst ended";
}

TEST(IngressPolicing, UnpolicedFlowsAreUnaffected) {
  Rig rig;
  PolicerConfig cfg;
  cfg.rate_bps = 1;  // draconian, but bound to flow 99
  rig.router().set_policer(99, cfg);
  rig.run_cbr();
  EXPECT_EQ(rig.stats.flow(1).delivered, 100u);
}

}  // namespace
}  // namespace empls::net
