// Unit tests for the control plane: label distribution, CSPF, bandwidth
// admission, tunnels, and teardown bookkeeping — against a scripted
// MplsNode fake so programming calls can be inspected exactly.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "net/ldp.hpp"
#include "net/node.hpp"

namespace empls::net {
namespace {

/// Inert node (the control plane never touches the data plane here).
class DummyNode : public Node {
 public:
  explicit DummyNode(std::string name) : Node(std::move(name)) {}
  void receive(PacketHandle, mpls::InterfaceId) override {}
};

/// Records every programming call.
class FakeRouter : public MplsNode {
 public:
  struct Entry {
    std::string kind;
    unsigned level;
    rtl::u32 key;
    rtl::u32 out_label;
    mpls::InterfaceId port;
  };

  bool program_ingress_exact(rtl::u32 pid, rtl::u32 out_label,
                             mpls::InterfaceId port) override {
    entries.push_back({"ingress_exact", 1, pid, out_label, port});
    return true;
  }
  bool program_ingress_prefix(const mpls::Prefix& fec, rtl::u32 out_label,
                              mpls::InterfaceId port) override {
    entries.push_back({"ingress_prefix", 1, fec.network.value, out_label,
                       port});
    return true;
  }
  bool program_swap(unsigned level, rtl::u32 in_label, rtl::u32 out_label,
                    mpls::InterfaceId port) override {
    entries.push_back({"swap", level, in_label, out_label, port});
    return true;
  }
  bool program_pop(unsigned level, rtl::u32 in_label,
                   mpls::InterfaceId port) override {
    entries.push_back({"pop", level, in_label, 0, port});
    return true;
  }
  bool program_push(unsigned level, rtl::u32 in_label, rtl::u32 outer,
                    mpls::InterfaceId port) override {
    entries.push_back({"push", level, in_label, outer, port});
    return true;
  }
  bool program_local(const mpls::Prefix& fec) override {
    entries.push_back({"local", 0, fec.network.value, 0, 0});
    return true;
  }
  mpls::LabelAllocator& label_allocator() override { return alloc; }

  std::vector<Entry> entries;
  mpls::LabelAllocator alloc{16};
};

struct Rig {
  Network net;
  ControlPlane cp{net};
  std::vector<std::unique_ptr<FakeRouter>> fakes;
  std::vector<NodeId> ids;

  NodeId add(const std::string& name) {
    const auto id = net.add_node(std::make_unique<DummyNode>(name));
    fakes.push_back(std::make_unique<FakeRouter>());
    cp.register_router(id, fakes.back().get());
    ids.push_back(id);
    return id;
  }
  FakeRouter& fake(NodeId id) { return *fakes[id]; }
};

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

TEST(ControlPlane, EstablishLspProgramsEveryHop) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);

  const auto lsp = rig.cp.establish_lsp({a, b, c}, pfx("10.0.0.0/8"));
  ASSERT_TRUE(lsp.has_value());
  const auto& rec = rig.cp.lsp(*lsp);
  ASSERT_EQ(rec.labels.size(), 2u);

  // Ingress: prefix binding pushing the label B expects.
  ASSERT_EQ(rig.fake(a).entries.size(), 1u);
  EXPECT_EQ(rig.fake(a).entries[0].kind, "ingress_prefix");
  EXPECT_EQ(rig.fake(a).entries[0].out_label, rec.labels[0]);
  // Transit: level-2 swap from B's label to C's.
  ASSERT_EQ(rig.fake(b).entries.size(), 1u);
  EXPECT_EQ(rig.fake(b).entries[0].kind, "swap");
  EXPECT_EQ(rig.fake(b).entries[0].level, 2u);
  EXPECT_EQ(rig.fake(b).entries[0].key, rec.labels[0]);
  EXPECT_EQ(rig.fake(b).entries[0].out_label, rec.labels[1]);
  // Egress: pop to local delivery.
  ASSERT_EQ(rig.fake(c).entries.size(), 1u);
  EXPECT_EQ(rig.fake(c).entries[0].kind, "pop");
  EXPECT_EQ(rig.fake(c).entries[0].port, mpls::kLocalDeliver);

  // Downstream allocation: each label owned by the receiving router.
  EXPECT_TRUE(rig.fake(b).alloc.is_allocated(rec.labels[0]));
  EXPECT_TRUE(rig.fake(c).alloc.is_allocated(rec.labels[1]));
}

TEST(ControlPlane, EstablishLspRejectsNonAdjacentPath) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);  // no B-C link
  EXPECT_FALSE(rig.cp.establish_lsp({a, b, c}, pfx("10.0.0.0/8")));
  EXPECT_TRUE(rig.fake(a).entries.empty()) << "nothing programmed on failure";
  EXPECT_EQ(rig.fake(b).alloc.allocated(), 0u) << "no leaked labels";
}

TEST(ControlPlane, EstablishLspRejectsUnregisteredRouter) {
  Rig rig;
  const auto a = rig.add("A");
  const auto stranger = rig.net.add_node(std::make_unique<DummyNode>("S"));
  rig.net.connect(a, stranger, 10e6, 1e-3);
  EXPECT_FALSE(rig.cp.establish_lsp({a, stranger}, pfx("10.0.0.0/8")));
}

TEST(ControlPlane, BandwidthAdmissionAndReservation) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  rig.net.connect(a, b, 10e6, 1e-3);
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 10e6);
  ASSERT_TRUE(rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), 6e6));
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 4e6);
  EXPECT_FALSE(rig.cp.establish_lsp({a, b}, pfx("10.1.0.0/16"), 6e6))
      << "admission control refuses over-subscription";
  EXPECT_TRUE(rig.cp.establish_lsp({a, b}, pfx("10.1.0.0/16"), 4e6));
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 0.0);
}

TEST(ControlPlane, CspfPrefersLowDelayThenAvoidsFullLinks) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);   // direct, fast
  rig.net.connect(a, c, 100e6, 5e-3);  // detour
  rig.net.connect(c, b, 100e6, 5e-3);
  const auto direct = rig.cp.compute_path(a, b, 0.0);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(*direct, (std::vector<NodeId>{a, b}));

  // Fill the direct link; CSPF must detour.
  ASSERT_TRUE(rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), 9e6));
  const auto detour = rig.cp.compute_path(a, b, 5e6);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(*detour, (std::vector<NodeId>{a, c, b}));

  // And when nothing fits, no path.
  EXPECT_FALSE(rig.cp.compute_path(a, b, 200e6).has_value());
}

TEST(ControlPlane, CspfDisconnected) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  EXPECT_FALSE(rig.cp.compute_path(a, b).has_value());
}

TEST(ControlPlane, TunnelProgramsInteriorWithPhp) {
  Rig rig;
  const auto h = rig.add("head");
  const auto x = rig.add("X");
  const auto y = rig.add("Y");
  const auto t = rig.add("tail");
  rig.net.connect(h, x, 10e6, 1e-3);
  rig.net.connect(x, y, 10e6, 1e-3);
  rig.net.connect(y, t, 10e6, 1e-3);

  const auto tunnel = rig.cp.establish_tunnel({h, x, y, t});
  ASSERT_TRUE(tunnel.has_value());
  const auto& rec = rig.cp.tunnel(*tunnel);
  ASSERT_EQ(rec.outer_labels.size(), 2u);

  // X swaps at level 3; Y pops toward the tail (PHP); the tail and head
  // get nothing yet (the head push is installed per inner LSP).
  ASSERT_EQ(rig.fake(x).entries.size(), 1u);
  EXPECT_EQ(rig.fake(x).entries[0].kind, "swap");
  EXPECT_EQ(rig.fake(x).entries[0].level, 3u);
  ASSERT_EQ(rig.fake(y).entries.size(), 1u);
  EXPECT_EQ(rig.fake(y).entries[0].kind, "pop");
  EXPECT_EQ(rig.fake(y).entries[0].level, 3u);
  EXPECT_NE(rig.fake(y).entries[0].port, mpls::kLocalDeliver);
  EXPECT_TRUE(rig.fake(h).entries.empty());
  EXPECT_TRUE(rig.fake(t).entries.empty());
}

TEST(ControlPlane, TunnelRequiresInteriorNode) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  rig.net.connect(a, b, 10e6, 1e-3);
  EXPECT_FALSE(rig.cp.establish_tunnel({a, b}).has_value());
}

TEST(ControlPlane, LspViaTunnelReservesCrossingLabelAtBothEnds) {
  Rig rig;
  const auto ing = rig.add("ingress");
  const auto h = rig.add("head");
  const auto x = rig.add("X");
  const auto t = rig.add("tail");
  const auto egr = rig.add("egress");
  rig.net.connect(ing, h, 10e6, 1e-3);
  rig.net.connect(h, x, 10e6, 1e-3);
  rig.net.connect(x, t, 10e6, 1e-3);
  rig.net.connect(t, egr, 10e6, 1e-3);

  const auto tunnel = rig.cp.establish_tunnel({h, x, t});
  ASSERT_TRUE(tunnel.has_value());
  const auto lsp = rig.cp.establish_lsp_via_tunnel({ing, h}, *tunnel,
                                                   {t, egr},
                                                   pfx("10.0.0.0/8"));
  ASSERT_TRUE(lsp.has_value());
  const auto& rec = rig.cp.lsp(*lsp);

  // The crossing label (what the head keys its PUSH on) must be live at
  // both the head and the tail, because the hardware re-pushes it
  // unchanged through the tunnel.
  ASSERT_EQ(rig.fake(h).entries.size(), 1u);
  EXPECT_EQ(rig.fake(h).entries[0].kind, "push");
  const rtl::u32 crossing = rig.fake(h).entries[0].key;
  EXPECT_TRUE(rig.fake(h).alloc.is_allocated(crossing));
  EXPECT_TRUE(rig.fake(t).alloc.is_allocated(crossing));
  // The head pushes the tunnel's first outer label.
  EXPECT_EQ(rig.fake(h).entries[0].out_label,
            rig.cp.tunnel(*tunnel).outer_labels[0]);
  // The tail continues the inner LSP at level 2.
  ASSERT_EQ(rig.fake(t).entries.size(), 1u);
  EXPECT_EQ(rig.fake(t).entries[0].kind, "swap");
  EXPECT_EQ(rig.fake(t).entries[0].key, crossing);
  // Full logical path recorded.
  EXPECT_EQ(rec.path, (std::vector<NodeId>{ing, h, t, egr}));
  EXPECT_EQ(rec.via_tunnel, tunnel);
}

TEST(ControlPlane, LspViaTunnelRejectsMismatchedEndpoints) {
  Rig rig;
  const auto ing = rig.add("ingress");
  const auto h = rig.add("head");
  const auto x = rig.add("X");
  const auto t = rig.add("tail");
  rig.net.connect(ing, h, 10e6, 1e-3);
  rig.net.connect(h, x, 10e6, 1e-3);
  rig.net.connect(x, t, 10e6, 1e-3);
  const auto tunnel = rig.cp.establish_tunnel({h, x, t});
  ASSERT_TRUE(tunnel.has_value());
  // pre_path does not end at the tunnel head.
  EXPECT_FALSE(rig.cp.establish_lsp_via_tunnel({ing, x}, *tunnel, {t},
                                               pfx("10.0.0.0/8")));
  // pre_path of one node (ingress == head) is unsupported: one operation
  // per router visit.
  EXPECT_FALSE(rig.cp.establish_lsp_via_tunnel({h}, *tunnel, {t},
                                               pfx("10.0.0.0/8")));
}

TEST(ControlPlane, TeardownReleasesLabelsAndBandwidth) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  rig.net.connect(a, b, 10e6, 1e-3);
  const auto lsp = rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), 4e6);
  ASSERT_TRUE(lsp.has_value());
  const auto label = rig.cp.lsp(*lsp).labels[0];
  EXPECT_TRUE(rig.fake(b).alloc.is_allocated(label));
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 6e6);

  rig.cp.teardown_lsp(*lsp);
  EXPECT_FALSE(rig.fake(b).alloc.is_allocated(label));
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 10e6);
}

TEST(ControlPlane, PhpPopsAtThePenultimateHop) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);

  LspOptions options;
  options.php = true;
  const auto lsp = rig.cp.establish_lsp({a, b, c}, pfx("10.0.0.0/8"),
                                        options);
  ASSERT_TRUE(lsp.has_value());
  EXPECT_EQ(rig.cp.lsp(*lsp).labels.size(), 1u)
      << "the egress never receives a label";

  // B pops toward C (not locally); C gets the local prefix.
  ASSERT_EQ(rig.fake(b).entries.size(), 1u);
  EXPECT_EQ(rig.fake(b).entries[0].kind, "pop");
  EXPECT_NE(rig.fake(b).entries[0].port, mpls::kLocalDeliver);
  ASSERT_EQ(rig.fake(c).entries.size(), 1u);
  EXPECT_EQ(rig.fake(c).entries[0].kind, "local");
  EXPECT_EQ(rig.fake(c).alloc.allocated(), 0u);
}

TEST(ControlPlane, PhpRequiresThreeNodes) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  rig.net.connect(a, b, 10e6, 1e-3);
  LspOptions options;
  options.php = true;
  EXPECT_FALSE(rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), options));
}

TEST(ControlPlane, MergingReusesTheSharedTail) {
  //   A --.
  //        M -- T   (two ingresses merge at M toward egress T)
  //   B --'
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto m = rig.add("M");
  const auto t = rig.add("T");
  rig.net.connect(a, m, 10e6, 1e-3);
  rig.net.connect(b, m, 10e6, 1e-3);
  rig.net.connect(m, t, 10e6, 1e-3);

  const auto fec = pfx("10.0.0.0/8");
  const auto first = rig.cp.establish_lsp({a, m, t}, fec);
  ASSERT_TRUE(first.has_value());
  const auto merge_label = rig.cp.lsp(*first).labels[0];

  LspOptions options;
  options.allow_merge = true;
  const auto second = rig.cp.establish_lsp({b, m, t}, fec, options);
  ASSERT_TRUE(second.has_value());
  const auto& rec = rig.cp.lsp(*second);
  ASSERT_TRUE(rec.merged_at.has_value());
  EXPECT_EQ(*rec.merged_at, 1u);
  EXPECT_EQ(rec.labels.back(), merge_label)
      << "the second ingress pushes straight into the existing label";

  // M and T were programmed exactly once (by the first LSP): the merge
  // is the aggregation the paper's tunnels motivate.
  EXPECT_EQ(rig.fake(m).entries.size(), 1u);
  EXPECT_EQ(rig.fake(t).entries.size(), 1u);
  // B's ingress pushes the merge label.
  ASSERT_EQ(rig.fake(b).entries.size(), 1u);
  EXPECT_EQ(rig.fake(b).entries[0].out_label, merge_label);
}

TEST(ControlPlane, MergeOnlyJoinsTheSameFec) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto m = rig.add("M");
  const auto t = rig.add("T");
  rig.net.connect(a, m, 10e6, 1e-3);
  rig.net.connect(b, m, 10e6, 1e-3);
  rig.net.connect(m, t, 10e6, 1e-3);
  ASSERT_TRUE(rig.cp.establish_lsp({a, m, t}, pfx("10.0.0.0/8")));

  LspOptions options;
  options.allow_merge = true;
  const auto other =
      rig.cp.establish_lsp({b, m, t}, pfx("172.16.0.0/12"), options);
  ASSERT_TRUE(other.has_value());
  EXPECT_FALSE(rig.cp.lsp(*other).merged_at.has_value())
      << "different FEC: full programming, no merge";
}

TEST(ControlPlane, DownLinksArePrunedFromPathsAndAdmission) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(a, c, 10e6, 5e-3);
  rig.net.connect(c, b, 10e6, 5e-3);

  rig.net.set_connection_up(a, b, false);
  const auto path = rig.cp.compute_path(a, b);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{a, c, b}))
      << "the dead direct link is avoided";
  EXPECT_FALSE(rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8")))
      << "explicit routes over dead links are refused";

  rig.net.set_connection_up(a, b, true);
  EXPECT_EQ(*rig.cp.compute_path(a, b), (std::vector<NodeId>{a, b}));
}

TEST(ControlPlane, RerouteMovesTheLspOffTheDeadLink) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(a, c, 10e6, 5e-3);
  rig.net.connect(c, b, 10e6, 5e-3);

  const auto lsp = rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), 3e6);
  ASSERT_TRUE(lsp.has_value());
  const auto old_label = rig.cp.lsp(*lsp).labels[0];

  rig.net.set_connection_up(a, b, false);
  const auto replacement = rig.cp.reroute_lsp(*lsp);
  ASSERT_TRUE(replacement.has_value());
  const auto& rec = rig.cp.lsp(*replacement);
  EXPECT_EQ(rec.path, (std::vector<NodeId>{a, c, b}));
  EXPECT_DOUBLE_EQ(rec.reserved_bw, 3e6);
  // Old label released, old reservation freed.
  EXPECT_FALSE(rig.fake(b).alloc.is_allocated(old_label) &&
               rec.labels.back() == old_label)
      << "old binding must not survive as the live one";
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, c), 7e6);
}

TEST(ControlPlane, ReoptimizeMovesToTheBetterPath) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);   // direct
  rig.net.connect(a, c, 10e6, 5e-3);   // detour
  rig.net.connect(c, b, 10e6, 5e-3);

  // Pin the LSP to the detour (as a failure-era reroute would have).
  const auto lsp = rig.cp.establish_lsp({a, c, b}, pfx("10.0.0.0/8"), 2e6);
  ASSERT_TRUE(lsp.has_value());
  const auto old_label = rig.cp.lsp(*lsp).labels[0];

  const auto better = rig.cp.reoptimize_lsp(*lsp);
  ASSERT_TRUE(better.has_value());
  EXPECT_EQ(rig.cp.lsp(*better).path, (std::vector<NodeId>{a, b}));
  // Old path fully released (labels and bandwidth).
  EXPECT_FALSE(rig.fake(c).alloc.is_allocated(old_label));
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, c), 10e6);
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 8e6);
}

TEST(ControlPlane, ReoptimizeKeepsAnAlreadyOptimalLsp) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  rig.net.connect(a, b, 10e6, 1e-3);
  const auto lsp = rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), 2e6);
  ASSERT_TRUE(lsp.has_value());
  EXPECT_FALSE(rig.cp.reoptimize_lsp(*lsp).has_value());
  EXPECT_FALSE(rig.cp.lsp(*lsp).labels.empty()) << "old LSP untouched";
}

TEST(ControlPlane, ReoptimizeIsMakeBeforeBreak) {
  // If the replacement cannot be admitted, the old LSP must survive.
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 5e-3);  // current (slow) path
  rig.net.connect(a, c, 10e6, 1e-3);  // better path...
  rig.net.connect(c, b, 10e6, 1e-3);
  const auto lsp = rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"), 2e6);
  ASSERT_TRUE(lsp.has_value());
  // ...but fill it so admission refuses the replacement.
  ASSERT_TRUE(rig.cp.establish_lsp({a, c, b}, pfx("172.16.0.0/12"), 9e6));
  EXPECT_FALSE(rig.cp.reoptimize_lsp(*lsp).has_value());
  EXPECT_FALSE(rig.cp.lsp(*lsp).labels.empty())
      << "make failed, so nothing was broken";
}

TEST(ControlPlane, RerouteFailsWhenNoAlternativeExists) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  rig.net.connect(a, b, 10e6, 1e-3);
  const auto lsp = rig.cp.establish_lsp({a, b}, pfx("10.0.0.0/8"));
  ASSERT_TRUE(lsp.has_value());
  rig.net.set_connection_up(a, b, false);
  EXPECT_FALSE(rig.cp.reroute_lsp(*lsp).has_value());
}

TEST(ControlPlane, EstablishLspCspfEndToEnd) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, c, 10e6, 3e-3);
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);
  const auto lsp = rig.cp.establish_lsp_cspf(a, c, pfx("10.0.0.0/8"));
  ASSERT_TRUE(lsp.has_value());
  EXPECT_EQ(rig.cp.lsp(*lsp).path, (std::vector<NodeId>{a, b, c}))
      << "two 1 ms hops beat one 3 ms hop";
}

}  // namespace
}  // namespace empls::net
