// Known-answer pins for the shared mixing finalizers (net/mix.hpp).
//
// Every open-addressing table, shard placement and flow-cache layout in
// the tree derives from mix32 / mix64; silently changing a constant
// would reshuffle all of them (and the replicated-engine differential
// walls would only catch it indirectly).  These vectors make the
// contract explicit: the exact published finalizers, byte for byte.

#include "net/mix.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace empls::net {
namespace {

TEST(Mix, Mix32KnownAnswers) {
  // splitmix32 finalizer (Ellard's constants).  Zero is the fixed point
  // — callers that must avoid it pre-add kGoldenGamma.
  EXPECT_EQ(mix32(0u), 0x00000000u);
  EXPECT_EQ(mix32(1u), 0x688990c0u);
  EXPECT_EQ(mix32(2u), 0xd1132181u);
  EXPECT_EQ(mix32(0xdeadbeefu), 0xe628c683u);
  EXPECT_EQ(mix32(0xffffffffu), 0x6768824au);
}

TEST(Mix, Mix64KnownAnswers) {
  EXPECT_EQ(mix64(0ull), 0x0000000000000000ull);
  EXPECT_EQ(mix64(1ull), 0x5692161d100b05e5ull);
  EXPECT_EQ(mix64(0x123456789abcdef0ull), 0x9629f58e8ec5b906ull);
}

TEST(Mix, Mix64MatchesPublishedSplitmix64Stream) {
  // splitmix64 seeded with 0 emits mix64(k * gamma) at step k; the
  // first three outputs are the reference vectors from the Steele /
  // Lea / Flood generator every PRNG test suite pins.
  EXPECT_EQ(mix64(1 * kGoldenGamma), 0xe220a8397b1dcdafull);
  EXPECT_EQ(mix64(2 * kGoldenGamma), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(mix64(3 * kGoldenGamma), 0x06c45d188009454full);
}

TEST(Mix, Mix64PairPacksLevelHigh) {
  // The sharded engine and the flow cache hash (level, key) as
  // (level << 32) | key; pin one vector plus the packing equivalence.
  EXPECT_EQ(mix64_pair(3u, 0x000fffffu), 0x0a32deae163c6d71ull);
  EXPECT_EQ(mix64_pair(7u, 42u), mix64((std::uint64_t{7} << 32) | 42u));
  EXPECT_NE(mix64_pair(1u, 2u), mix64_pair(2u, 1u));
}

TEST(Mix, AvalancheSmoke) {
  // Not a statistical test — just that adjacent inputs diverge in both
  // halves, which is the property the probe chains rely on.
  const std::uint32_t a = mix32(100u);
  const std::uint32_t b = mix32(101u);
  EXPECT_NE(a >> 16, b >> 16);
  EXPECT_NE(a & 0xffffu, b & 0xffffu);
  const std::uint64_t c = mix64(1000ull);
  const std::uint64_t d = mix64(1001ull);
  EXPECT_NE(c >> 32, d >> 32);
  EXPECT_NE(c & 0xffffffffull, d & 0xffffffffull);
}

}  // namespace
}  // namespace empls::net
