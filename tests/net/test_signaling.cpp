// Tests for the message-based LSP signaling protocol: setup over
// simulated time, latency accounting, admission failure with
// reservation rollback, and interoperation with the data plane.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/signaling.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

struct Rig {
  Network net;
  ControlPlane cp{net};
  SignalingProtocol signaling{net, cp, /*per_hop_processing=*/50e-6};
  std::vector<NodeId> nodes;

  NodeId add(const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    nodes.push_back(id);
    return id;
  }
};

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

TEST(Signaling, SetupCompletesAndProgramsThePath) {
  Rig rig;
  const auto a = rig.add("A", hw::RouterType::kLer);
  const auto b = rig.add("B", hw::RouterType::kLsr);
  const auto c = rig.add("C", hw::RouterType::kLer);
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);

  std::optional<SignalingProtocol::Result> result;
  ASSERT_TRUE(rig.signaling.signal_lsp(
      {a, b, c}, pfx("10.0.0.0/8"), 1e6,
      [&](const SignalingProtocol::Result& r) { result = r; }));
  EXPECT_FALSE(result.has_value()) << "setup is not instantaneous";
  rig.net.run();

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->lsp.has_value());
  const auto& rec = rig.cp.lsp(*result->lsp);
  EXPECT_EQ(rec.path, (std::vector<NodeId>{a, b, c}));
  ASSERT_EQ(rec.labels.size(), 2u);
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 9e6);

  // Setup latency: PATH a->b->c and RESV c->b->a cross each 1 ms link
  // twice (4 ms) plus 6 processing stops of 50 us (ingress send + 2 PATH
  // receives + 2 RESV forwards ... ) — bounded and positive.
  EXPECT_GT(result->setup_latency, 4e-3);
  EXPECT_LT(result->setup_latency, 4e-3 + 10 * 50e-6);

  // Data plane actually works after signalling.
  bool delivered = false;
  rig.net.set_delivery_handler(
      [&](NodeId, const mpls::Packet&) { delivered = true; });
  mpls::Packet p;
  p.dst = *mpls::Ipv4Address::parse("10.1.2.3");
  rig.net.inject(a, p);
  rig.net.run();
  EXPECT_TRUE(delivered);
}

TEST(Signaling, SetupLatencyGrowsLinearlyWithHops) {
  Rig rig;
  // A chain of 8 routers, 1 ms links.
  std::vector<NodeId> chain;
  for (int i = 0; i < 8; ++i) {
    std::string name(1, 'N');
    name += std::to_string(i);
    chain.push_back(rig.add(name.c_str(),
                            i == 0 || i == 7 ? hw::RouterType::kLer
                                             : hw::RouterType::kLsr));
  }
  for (int i = 0; i + 1 < 8; ++i) {
    rig.net.connect(chain[i], chain[i + 1], 10e6, 1e-3);
  }

  SimTime lat3 = 0;
  SimTime lat5 = 0;
  SimTime lat8 = 0;
  auto settle = [&](std::vector<NodeId> path, SimTime* out) {
    rig.signaling.signal_lsp(path, pfx("10.0.0.0/8"), 0.0,
                             [out](const SignalingProtocol::Result& r) {
                               *out = r.setup_latency;
                             });
    rig.net.run();
  };
  settle({chain[0], chain[1], chain[2]}, &lat3);
  settle({chain[0], chain[1], chain[2], chain[3], chain[4]}, &lat5);
  settle(chain, &lat8);

  EXPECT_GT(lat5, lat3);
  EXPECT_GT(lat8, lat5);
  // Linear shape: latency per hop is roughly constant (2x prop + 2x
  // proc per hop); allow 20% tolerance.
  const double per_hop_3 = lat3 / 2.0;
  const double per_hop_8 = lat8 / 7.0;
  EXPECT_NEAR(per_hop_8, per_hop_3, 0.2 * per_hop_3);
}

TEST(Signaling, AdmissionFailureRollsBackReservations) {
  Rig rig;
  const auto a = rig.add("A", hw::RouterType::kLer);
  const auto b = rig.add("B", hw::RouterType::kLsr);
  const auto c = rig.add("C", hw::RouterType::kLer);
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);
  // Exhaust the B->C link.
  ASSERT_TRUE(rig.cp.establish_lsp({b, c}, pfx("172.16.0.0/12"), 10e6));

  std::optional<SignalingProtocol::Result> result;
  rig.signaling.signal_lsp({a, b, c}, pfx("10.0.0.0/8"), 1e6,
                           [&](const SignalingProtocol::Result& r) {
                             result = r;
                           });
  rig.net.run();

  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->lsp.has_value());
  EXPECT_TRUE(result->failed_hop.has_value());
  // The tentative A->B reservation was released by the PATH_ERR.
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 10e6);
  EXPECT_EQ(rig.signaling.stats().setups_failed, 1u);
  EXPECT_GE(rig.signaling.stats().path_err_messages, 1u);
  // Nothing was programmed on any router.
  EXPECT_EQ(rig.net.node_as<core::EmbeddedRouter>(a)
                .engine()
                .level_size(1),
            0u);
}

TEST(Signaling, RejectsMalformedRequests) {
  Rig rig;
  const auto a = rig.add("A", hw::RouterType::kLer);
  EXPECT_FALSE(rig.signaling.signal_lsp({a}, pfx("10.0.0.0/8"), 0.0, {}));
  const auto stranger = rig.net.add_node(
      std::make_unique<core::EmbeddedRouter>(
          "S", std::make_unique<sw::LinearEngine>()));
  rig.net.connect(a, stranger, 10e6, 1e-3);
  EXPECT_FALSE(rig.signaling.signal_lsp({a, stranger}, pfx("10.0.0.0/8"),
                                        0.0, {}))
      << "unregistered routers are refused up front";
}

TEST(Signaling, AdoptedLspSupportsTeardown) {
  Rig rig;
  const auto a = rig.add("A", hw::RouterType::kLer);
  const auto b = rig.add("B", hw::RouterType::kLer);
  rig.net.connect(a, b, 10e6, 1e-3);

  std::optional<LspId> id;
  rig.signaling.signal_lsp({a, b}, pfx("10.0.0.0/8"), 2e6,
                           [&](const SignalingProtocol::Result& r) {
                             id = r.lsp;
                           });
  rig.net.run();
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 8e6);
  rig.cp.teardown_lsp(*id);
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 10e6);
}

TEST(Signaling, LabelExhaustionAbortsAndRollsBack) {
  // Egress router whose label space has a single value left: the first
  // setup consumes it, the second fails during the RESV pass and must
  // release its tentative reservations.
  Rig rig;
  const auto a = rig.add("A", hw::RouterType::kLer);
  core::RouterConfig cfg;
  cfg.type = hw::RouterType::kLer;
  cfg.label_base = mpls::kMaxLabel;  // exactly one allocatable label
  auto scarce = std::make_unique<core::EmbeddedRouter>(
      "B", std::make_unique<sw::LinearEngine>(), cfg);
  auto* scarce_raw = scarce.get();
  const auto b = rig.net.add_node(std::move(scarce));
  rig.cp.register_router(b, &scarce_raw->routing());
  rig.net.connect(a, b, 10e6, 1e-3);

  std::optional<SignalingProtocol::Result> first;
  std::optional<SignalingProtocol::Result> second;
  rig.signaling.signal_lsp({a, b}, pfx("10.1.0.0/16"), 1e6,
                           [&](const auto& r) { first = r; });
  rig.net.run();
  rig.signaling.signal_lsp({a, b}, pfx("10.2.0.0/16"), 1e6,
                           [&](const auto& r) { second = r; });
  rig.net.run();

  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->lsp.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->lsp.has_value()) << "no labels left at the egress";
  EXPECT_DOUBLE_EQ(rig.cp.residual_bw(a, b), 9e6)
      << "only the first LSP's reservation remains";
}

TEST(Signaling, MessageCounters) {
  Rig rig;
  const auto a = rig.add("A", hw::RouterType::kLer);
  const auto b = rig.add("B", hw::RouterType::kLsr);
  const auto c = rig.add("C", hw::RouterType::kLer);
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);
  rig.signaling.signal_lsp({a, b, c}, pfx("10.0.0.0/8"), 0.0, {});
  rig.net.run();
  EXPECT_EQ(rig.signaling.stats().path_messages, 3u);
  EXPECT_EQ(rig.signaling.stats().resv_messages, 3u);
  EXPECT_EQ(rig.signaling.stats().setups_completed, 1u);
}

}  // namespace
}  // namespace empls::net
