// Tests for the distributed link-state routing protocol: flooding,
// convergence, SPF correctness against the omniscient CSPF, failure
// propagation, and partition behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "net/ldp.hpp"
#include "net/link_state.hpp"
#include "net/node.hpp"

namespace empls::net {
namespace {

/// Inert node: link-state tests exercise the control plane only.
class DummyNode : public Node {
 public:
  explicit DummyNode(std::string name) : Node(std::move(name)) {}
  void receive(PacketHandle, mpls::InterfaceId) override {}
};

struct Rig {
  Network net;
  LinkStateRouting lsr{net, /*flood_hop_delay=*/1e-3};

  NodeId add(const char* name) {
    return net.add_node(std::make_unique<DummyNode>(name));
  }
};

TEST(LinkState, BootstrapConvergesToIdenticalDatabases) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);
  rig.lsr.add_all_routers();
  rig.lsr.bootstrap();
  EXPECT_FALSE(rig.lsr.converged())
      << "before flooding finishes, views differ";
  rig.net.run();
  EXPECT_TRUE(rig.lsr.converged());
  EXPECT_EQ(rig.lsr.stats().lsas_originated, 3u);
  EXPECT_GT(rig.lsr.stats().floods_stale, 0u)
      << "flooding terminates by dropping old news";
}

TEST(LinkState, SpfFindsShortestPath) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, c, 10e6, 5e-3);  // direct but slow
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);
  rig.lsr.add_all_routers();
  rig.lsr.bootstrap();
  rig.net.run();
  const auto path = rig.lsr.path_from(a, c);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<NodeId>{a, b, c}));
  EXPECT_EQ(*rig.lsr.path_from(a, a), (std::vector<NodeId>{a}));
}

class LinkStateRandom : public ::testing::TestWithParam<unsigned> {};

TEST_P(LinkStateRandom, AgreesWithOmniscientCspfOnRandomTopologies) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Rig rig;
    ControlPlane cp(rig.net);
    const unsigned n = 5 + rng() % 5;
    std::vector<NodeId> nodes;
    for (unsigned i = 0; i < n; ++i) {
      std::string name(1, 'N');
      name += std::to_string(i);
      nodes.push_back(rig.add(name.c_str()));
    }
    for (unsigned i = 0; i < n; ++i) {
      rig.net.connect(nodes[i], nodes[(i + 1) % n], 10e6,
                      (1 + rng() % 5) * 1e-3);
    }
    for (int chord = 0; chord < 3; ++chord) {
      const unsigned x = rng() % n;
      const unsigned y = rng() % n;
      if (x != y) {
        rig.net.connect(nodes[x], nodes[y], 10e6, (1 + rng() % 5) * 1e-3);
      }
    }
    rig.lsr.add_all_routers();
    rig.lsr.bootstrap();
    rig.net.run();
    ASSERT_TRUE(rig.lsr.converged());
    for (int probe = 0; probe < 10; ++probe) {
      const NodeId from = nodes[rng() % n];
      const NodeId to = nodes[rng() % n];
      const auto distributed = rig.lsr.path_from(from, to);
      const auto omniscient = cp.compute_path(from, to);
      ASSERT_EQ(distributed.has_value(), omniscient.has_value());
      if (distributed) {
        EXPECT_EQ(*distributed, *omniscient)
            << "trial " << trial << " " << from << "->" << to;
      }
    }
  }
}

// 7 is the historical seed; keeping it first keeps the original
// topologies covered.
INSTANTIATE_TEST_SUITE_P(Seeds, LinkStateRandom,
                         ::testing::Values(7u, 1009u));

TEST(LinkState, FailureNewsFloodsAndReroutesSpf) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  rig.net.connect(a, b, 10e6, 1e-3);   // primary
  rig.net.connect(a, c, 10e6, 2e-3);   // detour
  rig.net.connect(c, b, 10e6, 2e-3);
  rig.lsr.add_all_routers();
  rig.lsr.bootstrap();
  rig.net.run();
  ASSERT_EQ(*rig.lsr.path_from(a, b), (std::vector<NodeId>{a, b}));

  rig.net.set_connection_up(a, b, false);
  rig.lsr.notify_link_change(a, b);
  rig.net.run();
  EXPECT_TRUE(rig.lsr.converged());
  EXPECT_EQ(*rig.lsr.path_from(a, b), (std::vector<NodeId>{a, c, b}));
  // Every other router learned too.
  EXPECT_EQ(*rig.lsr.path_from(c, b), (std::vector<NodeId>{c, b}));
}

TEST(LinkState, StaleViewUntilTheNewsArrives) {
  // A long chain: the far end keeps believing in a dead link until the
  // flood reaches it (1 ms per hop).
  Rig rig;
  std::vector<NodeId> chain;
  for (int i = 0; i < 6; ++i) {
    std::string name(1, 'N');
    name += std::to_string(i);
    chain.push_back(rig.add(name.c_str()));
  }
  for (int i = 0; i + 1 < 6; ++i) {
    rig.net.connect(chain[i], chain[i + 1], 10e6, 1e-3);
  }
  rig.lsr.add_all_routers();
  rig.lsr.bootstrap();
  rig.net.run();

  // N0-N1 dies; only the endpoints re-originate.
  rig.net.set_connection_up(chain[0], chain[1], false);
  rig.lsr.notify_link_change(chain[0], chain[1]);
  // After 2 flood hops, N5 (4 hops away) still has the stale view.
  rig.net.run_until(rig.net.now() + 2.5e-3);
  EXPECT_TRUE(rig.lsr.path_from(chain[5], chain[0]).has_value())
      << "stale database still believes the path exists";
  rig.net.run();
  EXPECT_FALSE(rig.lsr.path_from(chain[5], chain[0]).has_value())
      << "after convergence the partition is visible";
}

TEST(LinkState, IgpDrivenLspEstablishment) {
  // Routers with real data planes this time: the ingress's own view
  // picks the path, and admission catches stale views.
  Rig rig;
  ControlPlane cp(rig.net);
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  // FakeRouter-free: use real-enough MplsNode stubs via ControlPlane
  // registration of inert routing functionality is not possible here,
  // so reuse the link-state agreement property: establish over the IGP
  // path and compare against CSPF placement.
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(b, c, 10e6, 1e-3);
  rig.lsr.add_all_routers();
  rig.lsr.bootstrap();
  rig.net.run();
  const auto igp_path = rig.lsr.path_from(a, c);
  const auto cspf_path = cp.compute_path(a, c);
  ASSERT_TRUE(igp_path.has_value());
  ASSERT_TRUE(cspf_path.has_value());
  EXPECT_EQ(*igp_path, *cspf_path);

  // Stale view: kill B-C but withhold the news; the IGP still proposes
  // the dead path, and establishment must refuse it (admission checks
  // live link state).
  rig.net.set_connection_up(b, c, false);
  const auto stale = rig.lsr.path_from(a, c);
  ASSERT_TRUE(stale.has_value()) << "the IGP has not heard yet";
  EXPECT_FALSE(cp.establish_lsp_igp(rig.lsr, a, c,
                                    *mpls::Prefix::parse("10.0.0.0/8")))
      << "unregistered routers + dead link: establishment refuses";
}

TEST(LinkState, PartitionedFloodingCannotCross) {
  Rig rig;
  const auto a = rig.add("A");
  const auto b = rig.add("B");
  const auto c = rig.add("C");
  const auto d = rig.add("D");
  rig.net.connect(a, b, 10e6, 1e-3);
  rig.net.connect(c, d, 10e6, 1e-3);  // disconnected island
  rig.lsr.add_all_routers();
  rig.lsr.bootstrap();
  rig.net.run();
  EXPECT_FALSE(rig.lsr.path_from(a, c).has_value());
  EXPECT_TRUE(rig.lsr.path_from(a, b).has_value());
  EXPECT_TRUE(rig.lsr.path_from(c, d).has_value());
  EXPECT_FALSE(rig.lsr.converged())
      << "islands never see each other's LSAs";
}

}  // namespace
}  // namespace empls::net
