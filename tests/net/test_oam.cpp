// Tests for MPLS OAM: lsp_ping and lsp_traceroute over real routers,
// plus the discard-reason reporting they rely on.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/oam.hpp"
#include "net/stats.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

struct Rig {
  Network net;
  ControlPlane cp{net};
  Oam oam{net};
  NodeId a, b, c, d;

  Rig() {
    auto add = [&](const char* name, hw::RouterType type) {
      core::RouterConfig cfg;
      cfg.type = type;
      auto r = std::make_unique<core::EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), cfg);
      auto* raw = r.get();
      const auto id = net.add_node(std::move(r));
      cp.register_router(id, &raw->routing());
      return id;
    };
    a = add("A", hw::RouterType::kLer);
    b = add("B", hw::RouterType::kLsr);
    c = add("C", hw::RouterType::kLsr);
    d = add("D", hw::RouterType::kLer);
    net.connect(a, b, 100e6, 1e-3);
    net.connect(b, c, 100e6, 1e-3);
    net.connect(c, d, 100e6, 1e-3);
  }
};

const auto kDst = *mpls::Ipv4Address::parse("10.1.0.5");
mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

TEST(Oam, PingReachesTheEgress) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  std::optional<Oam::PingResult> result;
  rig.oam.lsp_ping(rig.a, kDst, [&](const auto& r) { result = r; });
  rig.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->reachable);
  EXPECT_EQ(result->egress, rig.d);
  EXPECT_GT(result->latency, 3e-3) << "three 1 ms hops";
  EXPECT_LT(result->latency, 4e-3);
}

TEST(Oam, PingReportsTheBlackhole) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  // Break the data plane at C without telling the control plane: wipe
  // C's information base (the failure OAM exists to find).
  rig.net.node_as<core::EmbeddedRouter>(rig.c).engine().clear();

  std::optional<Oam::PingResult> result;
  rig.oam.lsp_ping(rig.a, kDst, [&](const auto& r) { result = r; });
  rig.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->reachable);
  EXPECT_EQ(result->discarded_at, rig.c);
  EXPECT_EQ(result->discard_reason, "no-label-binding");
}

TEST(Oam, PingTimesOutOnDeadLink) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  rig.net.set_connection_up(rig.b, rig.c, false);
  std::optional<Oam::PingResult> result;
  rig.oam.lsp_ping(rig.a, kDst, [&](const auto& r) { result = r; },
                   /*timeout=*/0.1);
  rig.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->reachable);
  EXPECT_FALSE(result->discarded_at.has_value())
      << "a link drop is silent: only the timeout notices";
  EXPECT_EQ(result->discard_reason, "timeout");
}

TEST(Oam, PingUnroutableDestination) {
  Rig rig;  // no LSP at all
  std::optional<Oam::PingResult> result;
  rig.oam.lsp_ping(rig.a, kDst, [&](const auto& r) { result = r; });
  rig.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->reachable);
  EXPECT_EQ(result->discarded_at, rig.a);
}

TEST(Oam, TracerouteMapsThePath) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  std::optional<Oam::TracerouteResult> result;
  rig.oam.lsp_traceroute(rig.a, kDst, [&](const auto& r) { result = r; });
  rig.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->complete);

  // Expected answers: TTL1 expires at A (ingress decrement), TTL2 at B,
  // TTL3 at C, TTL4 expires at D (the pop's decrement), TTL5 delivers.
  ASSERT_EQ(result->hops.size(), 5u);
  EXPECT_EQ(result->hops[0].node, rig.a);
  EXPECT_EQ(result->hops[1].node, rig.b);
  EXPECT_EQ(result->hops[2].node, rig.c);
  EXPECT_EQ(result->hops[3].node, rig.d);
  EXPECT_FALSE(result->hops[3].is_egress) << "TTL died in the final pop";
  EXPECT_EQ(result->hops[4].node, rig.d);
  EXPECT_TRUE(result->hops[4].is_egress);
  // Latency grows with depth.
  EXPECT_LT(result->hops[0].latency, result->hops[2].latency);
}

TEST(Oam, TracerouteStopsAtABlackhole) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  rig.net.node_as<core::EmbeddedRouter>(rig.c).engine().clear();
  std::optional<Oam::TracerouteResult> result;
  rig.oam.lsp_traceroute(rig.a, kDst, [&](const auto& r) { result = r; });
  rig.net.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->complete);
  // A and B answer with TTL expiry; C answers with the binding miss.
  ASSERT_GE(result->hops.size(), 3u);
  EXPECT_EQ(result->hops.back().node, rig.c);
  EXPECT_FALSE(result->hops.back().is_egress);
}

TEST(Oam, ProbesDoNotDisturbFlowAccounting) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  FlowStats stats;
  rig.net.add_delivery_handler([&](NodeId, const mpls::Packet& p) {
    if (p.flow_id < kOamFlowBase) {
      stats.on_delivered(p, rig.net.now());
    }
  });
  std::optional<Oam::PingResult> ping;
  rig.oam.lsp_ping(rig.a, kDst, [&](const auto& r) { ping = r; });
  rig.net.run();
  EXPECT_TRUE(ping.has_value());
  EXPECT_EQ(stats.total_delivered(), 0u)
      << "OAM probes are filtered out of traffic stats";
}

}  // namespace
}  // namespace empls::net
