// Mixed fault campaigns (the slow acceptance stress, labelled `slow` in
// ctest): seeded 60-fault campaigns of cuts, flaps, crashes and
// information-base corruptions against a protected, auto-repairing
// network.  No crash, and every flow conserves packets — anything not
// delivered is an accounted drop, nothing vanishes.  Runs once on the
// single-datapath golden engine and once on the sharded parallel plane
// (which must keep the same books while batching through worker
// threads; the TSan CI job runs this file for data-race coverage).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/embedded_router.hpp"
#include "net/failure_detector.hpp"
#include "net/fault_injector.hpp"
#include "net/protection.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/cam_engine.hpp"
#include "sw/hash_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/sharded_engine.hpp"
#include "sw/simd_engine.hpp"

namespace empls::net {
namespace {

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;

  /// `shards` == 0: the LinearEngine golden model, per-packet service.
  /// `shards` >= 1: ShardedEngine with batched engine service.
  NodeId add_router(const char* name, hw::RouterType type, unsigned shards,
                    std::size_t batch) {
    core::RouterConfig cfg;
    cfg.type = type;
    std::unique_ptr<sw::LabelEngine> engine;
    if (shards == 0) {
      engine = std::make_unique<sw::LinearEngine>();
    } else {
      engine = std::make_unique<sw::ShardedEngine>(shards);
      cfg.engine_batch_size = batch;
    }
    auto r = std::make_unique<core::EmbeddedRouter>(name, std::move(engine),
                                                    cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  }

  /// Router backed by a named software engine (the corruption campaign
  /// runs across all of them).
  NodeId add_router_engine(const char* name, hw::RouterType type,
                           const std::string& kind) {
    core::RouterConfig cfg;
    cfg.type = type;
    std::unique_ptr<sw::LabelEngine> engine;
    if (kind == "hash") {
      engine = std::make_unique<sw::HashEngine>();
    } else if (kind == "cam") {
      engine = std::make_unique<sw::CamEngine>();
    } else if (kind == "simd") {
      engine = std::make_unique<sw::SimdEngine>();
    } else {
      engine = std::make_unique<sw::LinearEngine>();
    }
    auto r = std::make_unique<core::EmbeddedRouter>(name, std::move(engine),
                                                    cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  }

  void deliver_into_stats() {
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }
};

class FaultCampaign : public ::testing::TestWithParam<unsigned> {};

// The acceptance stress: a seeded mixed campaign of >= 50 faults (cuts,
// flaps, crashes, corruptions) against a protected, auto-repairing
// six-router network with a detour plane.
TEST_P(FaultCampaign, SixtyFaultCampaignConservesEveryFlow) {
  const unsigned shards = GetParam();
  Rig rig;
  const auto a = rig.add_router("A", hw::RouterType::kLer, shards, 8);
  const auto b = rig.add_router("B", hw::RouterType::kLsr, shards, 8);
  const auto c = rig.add_router("C", hw::RouterType::kLsr, shards, 8);
  const auto d = rig.add_router("D", hw::RouterType::kLsr, shards, 8);
  const auto e = rig.add_router("E", hw::RouterType::kLsr, shards, 8);
  const auto f = rig.add_router("F", hw::RouterType::kLer, shards, 8);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, c, 100e6, 1e-3);  // primary core
  rig.net.connect(c, f, 100e6, 1e-3);
  rig.net.connect(b, d, 100e6, 2e-3);  // detour plane
  rig.net.connect(d, c, 100e6, 2e-3);
  rig.net.connect(d, e, 100e6, 2e-3);
  rig.net.connect(e, c, 100e6, 2e-3);
  rig.deliver_into_stats();

  const auto lsp1 = rig.cp.establish_lsp({a, b, c, f}, pfx("10.1.0.0/16"));
  const auto lsp2 = rig.cp.establish_lsp({f, c, b, a}, pfx("10.2.0.0/16"));
  ASSERT_TRUE(lsp1.has_value());
  ASSERT_TRUE(lsp2.has_value());
  EXPECT_GT(rig.cp.protect_lsp(*lsp1), 0u);
  EXPECT_GT(rig.cp.protect_lsp(*lsp2), 0u);

  DropAccountant drops(rig.net);
  FailureDetector detector(rig.net, rig.cp, 10e-3, 3);
  detector.watch_all();
  ProtectionManager protection(rig.net, rig.cp);
  protection.attach_fast_signal();
  protection.arm(detector);
  detector.start(1.3);

  FlowSpec fwd{1, a, mpls::Ipv4Address{1},
               *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 1.1999};
  FlowSpec rev{2, f, mpls::Ipv4Address{2},
               *mpls::Ipv4Address::parse("10.2.0.5"), 6, 100, 0.0, 1.1999};
  CbrSource flow1(rig.net, fwd, &rig.stats, 1e-3);
  CbrSource flow2(rig.net, rev, &rig.stats, 1e-3);
  flow1.start();
  flow2.start();

  FaultInjector injector(rig.net, rig.cp);
  const auto campaign =
      injector.generate_campaign(/*seed=*/42, /*count=*/60,
                                 /*start=*/0.05, /*horizon=*/1.0,
                                 detector.detection_time());
  ASSERT_GE(campaign.size(), 50u);
  unsigned cuts = 0;
  unsigned flaps = 0;
  unsigned crashes = 0;
  unsigned corruptions = 0;
  for (const auto& spec : campaign) {
    cuts += spec.kind == FaultKind::kCut ? 1 : 0;
    flaps += spec.kind == FaultKind::kFlap ? 1 : 0;
    crashes += spec.kind == FaultKind::kCrash ? 1 : 0;
    corruptions += spec.kind == FaultKind::kCorrupt ? 1 : 0;
  }
  EXPECT_GT(cuts, 0u);
  EXPECT_GT(flaps, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(corruptions, 0u);
  injector.schedule_campaign(campaign);

  rig.net.run();  // survive the whole campaign without crashing

  for (const auto& rec : injector.records()) {
    EXPECT_TRUE(rec.injected);
    if (rec.spec.duration > 0) {
      EXPECT_TRUE(rec.cleared);
    }
  }

  // The books must balance for every flow — a packet that is neither
  // delivered nor in the drop ledger is a simulator bug.
  EXPECT_TRUE(drops.conserved(rig.stats)) << injector.summary();
  for (const auto flow_id : {1u, 2u}) {
    const auto& flow = rig.stats.flow(flow_id);
    EXPECT_EQ(flow.sent, flow.delivered + drops.drops(flow_id));
    EXPECT_GT(flow.delivered, 0u);
  }
}

// Corruption faults must bite on EVERY software engine: corrupt_entry
// has engine-specific implementations (scan for linear, map mutation
// for hash, inner-delegate for cam, SoA lane poke for simd), and a
// silent no-op would make the resilience results for that engine
// vacuously clean.  Each engine must (a) actually garble the binding,
// (b) misroute or drop because of it, and (c) be healed by the resync
// audit, after which the flow recovers.
class CorruptionByEngine : public ::testing::TestWithParam<const char*> {};

TEST_P(CorruptionByEngine, CorruptionBitesAndResyncHeals) {
  const std::string kind = GetParam();
  Rig rig;
  const auto a = rig.add_router_engine("A", hw::RouterType::kLer, kind);
  const auto b = rig.add_router_engine("B", hw::RouterType::kLsr, kind);
  const auto c = rig.add_router_engine("C", hw::RouterType::kLer, kind);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, c, 100e6, 1e-3);
  rig.deliver_into_stats();

  ASSERT_TRUE(rig.cp.establish_lsp({a, b, c}, pfx("10.1.0.0/16")));

  DropAccountant drops(rig.net);
  FlowSpec spec{1, a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.5};
  CbrSource flow(rig.net, spec, &rig.stats, 1e-3);
  flow.start();

  // Garble a binding in the transit LSR's information base at 100 ms;
  // the audit-and-repair pass runs 50 ms later.
  FaultInjector injector(rig.net, rig.cp);
  injector.inject(FaultSpec{FaultKind::kCorrupt, 0.1, b, 0,
                            /*duration=resync*/ 0.05, /*salt=*/1});
  rig.net.run();

  ASSERT_EQ(injector.records().size(), 1u);
  const auto& rec = injector.records().front();
  EXPECT_TRUE(rec.injected);
  EXPECT_TRUE(rec.corrupted) << kind << ": corrupt_entry found no binding";
  EXPECT_GE(rec.resynced, 1u) << kind << ": audit repaired nothing";

  // The garbled label misdelivers or drops real packets until the
  // resync, and traffic flows again afterwards — books stay balanced.
  const auto& f = rig.stats.flow(1);
  EXPECT_LT(f.delivered, f.sent);
  EXPECT_GT(f.delivered, 400u);  // recovered after the 50 ms outage
  EXPECT_TRUE(drops.conserved(rig.stats)) << injector.summary();
}

INSTANTIATE_TEST_SUITE_P(Engines, CorruptionByEngine,
                         ::testing::Values("linear", "hash", "cam", "simd"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// shards == 0 is the LinearEngine baseline; 1 / 4 exercise the sharded
// plane's quiesce-under-reprogramming path (every corruption resync and
// protection switch reprograms information bases mid-traffic).
INSTANTIATE_TEST_SUITE_P(Engines, FaultCampaign,
                         ::testing::Values(0u, 1u, 4u),
                         [](const auto& info) {
                           return info.param == 0
                                      ? std::string("linear")
                                      : "sharded" +
                                            std::to_string(info.param);
                         });

}  // namespace
}  // namespace empls::net
