// Tests for the deterministic fault-injection harness: seeded campaigns,
// information-base corruption with audit-and-resync repair, and flow
// conservation (sent = delivered + accounted drops) under fire.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/failure_detector.hpp"
#include "net/fault_injector.hpp"
#include "net/protection.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;

  NodeId add_router(const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  }

  void deliver_into_stats() {
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }
};

TEST(FaultInjector, CorruptionDivergesHardwareAndResyncRepairsIt) {
  Rig rig;
  const auto a = rig.add_router("A", hw::RouterType::kLer);
  const auto b = rig.add_router("B", hw::RouterType::kLsr);
  const auto d = rig.add_router("D", hw::RouterType::kLer);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, d, 100e6, 1e-3);
  rig.deliver_into_stats();
  const auto lsp = rig.cp.establish_lsp({a, b, d}, pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  DropAccountant drops(rig.net);
  FlowSpec spec{1, a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.2999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);
  probe.start();

  FaultInjector injector(rig.net, rig.cp);
  // Garble B's transit binding at 100 ms; the audit runs 50 ms later.
  const auto index = injector.inject(FaultSpec{
      FaultKind::kCorrupt, 0.1, b, 0, /*duration=*/0.05, /*salt=*/7});
  rig.net.run();

  auto& routing = rig.net.node_as<core::EmbeddedRouter>(b).routing();
  const auto& rec = injector.records()[index];
  EXPECT_TRUE(rec.injected);
  EXPECT_TRUE(rec.corrupted);
  EXPECT_EQ(rec.resynced, 1u);
  EXPECT_EQ(routing.corruptions(), 1u);
  EXPECT_EQ(routing.resyncs(), 1u);

  // During the 50 ms divergence window B forwarded onto a label D never
  // bound: those packets died accountably, and delivery resumed after
  // the resync.
  const auto& flow = rig.stats.flow(1);
  EXPECT_GT(drops.drops(1), 0u);
  EXPECT_GE(flow.delivered, flow.sent - 55);
  EXPECT_EQ(flow.sent, flow.delivered + drops.drops(1));
}

TEST(FaultInjector, CorruptEntryWorksOnBothSoftwareAndRtlEngines) {
  const mpls::LabelPair pair{40, 50, mpls::LabelOp::kSwap};

  sw::LinearEngine linear;
  ASSERT_TRUE(linear.write_pair(2, pair));
  EXPECT_FALSE(linear.corrupt_entry(2, 99, 60));  // no such key
  ASSERT_TRUE(linear.corrupt_entry(2, 40, 60));
  auto hit = linear.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 60u);

  sw::HwEngine rtl;
  ASSERT_TRUE(rtl.write_pair(2, pair));
  EXPECT_FALSE(rtl.corrupt_entry(2, 99, 60));
  ASSERT_TRUE(rtl.corrupt_entry(2, 40, 60));
  hit = rtl.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 60u) << "the label BRAM itself must diverge";
}

TEST(FaultInjector, CampaignsAreDeterministicPerSeed) {
  Rig rig;
  const auto a = rig.add_router("A", hw::RouterType::kLer);
  const auto b = rig.add_router("B", hw::RouterType::kLsr);
  const auto c = rig.add_router("C", hw::RouterType::kLer);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, c, 100e6, 1e-3);

  FaultInjector injector(rig.net, rig.cp);
  const auto one = injector.generate_campaign(1234, 40, 0.1, 1.0);
  const auto two = injector.generate_campaign(1234, 40, 0.1, 1.0);
  const auto other = injector.generate_campaign(99, 40, 0.1, 1.0);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].kind, two[i].kind);
    EXPECT_DOUBLE_EQ(one[i].at, two[i].at);
    EXPECT_EQ(one[i].a, two[i].a);
    EXPECT_EQ(one[i].b, two[i].b);
    EXPECT_DOUBLE_EQ(one[i].duration, two[i].duration);
    EXPECT_EQ(one[i].salt, two[i].salt);
  }
  // A different seed produces a different campaign.
  bool differs = other.size() != one.size();
  for (std::size_t i = 0; !differs && i < one.size(); ++i) {
    differs = one[i].at != other[i].at || one[i].kind != other[i].kind;
  }
  EXPECT_TRUE(differs);

  // Every fault lands inside the requested window, flaps stay under the
  // detection window, and outages outlast it.
  for (const auto& spec : one) {
    EXPECT_GE(spec.at, 0.1);
    EXPECT_LT(spec.at, 1.0);
    if (spec.kind == FaultKind::kFlap) {
      EXPECT_LT(spec.duration, 30e-3);
    } else if (spec.kind != FaultKind::kCorrupt) {
      EXPECT_GE(spec.duration, 60e-3);
    }
  }
}

// The acceptance stress: a seeded mixed campaign of >= 50 faults (cuts,
// flaps, crashes, corruptions) against a protected, auto-repairing
// network.  No crash, and every flow conserves packets: anything not
// delivered is an accounted drop, nothing vanishes.
TEST(FaultInjector, FiftyFaultCampaignConservesEveryFlow) {
  Rig rig;
  const auto a = rig.add_router("A", hw::RouterType::kLer);
  const auto b = rig.add_router("B", hw::RouterType::kLsr);
  const auto c = rig.add_router("C", hw::RouterType::kLsr);
  const auto d = rig.add_router("D", hw::RouterType::kLsr);
  const auto e = rig.add_router("E", hw::RouterType::kLsr);
  const auto f = rig.add_router("F", hw::RouterType::kLer);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, c, 100e6, 1e-3);  // primary core
  rig.net.connect(c, f, 100e6, 1e-3);
  rig.net.connect(b, d, 100e6, 2e-3);  // detour plane
  rig.net.connect(d, c, 100e6, 2e-3);
  rig.net.connect(d, e, 100e6, 2e-3);
  rig.net.connect(e, c, 100e6, 2e-3);
  rig.deliver_into_stats();

  const auto lsp1 = rig.cp.establish_lsp({a, b, c, f}, pfx("10.1.0.0/16"));
  const auto lsp2 = rig.cp.establish_lsp({f, c, b, a}, pfx("10.2.0.0/16"));
  ASSERT_TRUE(lsp1.has_value());
  ASSERT_TRUE(lsp2.has_value());
  EXPECT_GT(rig.cp.protect_lsp(*lsp1), 0u);
  EXPECT_GT(rig.cp.protect_lsp(*lsp2), 0u);

  DropAccountant drops(rig.net);
  FailureDetector detector(rig.net, rig.cp, 10e-3, 3);
  detector.watch_all();
  ProtectionManager protection(rig.net, rig.cp);
  protection.attach_fast_signal();
  protection.arm(detector);
  detector.start(1.3);

  FlowSpec fwd{1, a, mpls::Ipv4Address{1},
               *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 1.1999};
  FlowSpec rev{2, f, mpls::Ipv4Address{2},
               *mpls::Ipv4Address::parse("10.2.0.5"), 6, 100, 0.0, 1.1999};
  CbrSource flow1(rig.net, fwd, &rig.stats, 1e-3);
  CbrSource flow2(rig.net, rev, &rig.stats, 1e-3);
  flow1.start();
  flow2.start();

  FaultInjector injector(rig.net, rig.cp);
  const auto campaign =
      injector.generate_campaign(/*seed=*/42, /*count=*/60,
                                 /*start=*/0.05, /*horizon=*/1.0,
                                 detector.detection_time());
  ASSERT_GE(campaign.size(), 50u);
  unsigned cuts = 0;
  unsigned flaps = 0;
  unsigned crashes = 0;
  unsigned corruptions = 0;
  for (const auto& spec : campaign) {
    cuts += spec.kind == FaultKind::kCut ? 1 : 0;
    flaps += spec.kind == FaultKind::kFlap ? 1 : 0;
    crashes += spec.kind == FaultKind::kCrash ? 1 : 0;
    corruptions += spec.kind == FaultKind::kCorrupt ? 1 : 0;
  }
  EXPECT_GT(cuts, 0u);
  EXPECT_GT(flaps, 0u);
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(corruptions, 0u);
  injector.schedule_campaign(campaign);

  rig.net.run();  // survive the whole campaign without crashing

  for (const auto& rec : injector.records()) {
    EXPECT_TRUE(rec.injected);
    if (rec.spec.duration > 0) {
      EXPECT_TRUE(rec.cleared);
    }
  }

  // The books must balance for every flow — a packet that is neither
  // delivered nor in the drop ledger is a simulator bug.
  EXPECT_TRUE(drops.conserved(rig.stats)) << injector.summary();
  for (const auto flow_id : {1u, 2u}) {
    const auto& flow = rig.stats.flow(flow_id);
    EXPECT_EQ(flow.sent, flow.delivered + drops.drops(flow_id));
    EXPECT_GT(flow.delivered, 0u);
  }
}

}  // namespace
}  // namespace empls::net
