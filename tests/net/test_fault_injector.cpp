// Tests for the deterministic fault-injection harness: seeded campaigns,
// information-base corruption with audit-and-resync repair, and flow
// conservation (sent = delivered + accounted drops) under fire.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/fault_injector.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;

  NodeId add_router(const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  }

  void deliver_into_stats() {
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }
};

TEST(FaultInjector, CorruptionDivergesHardwareAndResyncRepairsIt) {
  Rig rig;
  const auto a = rig.add_router("A", hw::RouterType::kLer);
  const auto b = rig.add_router("B", hw::RouterType::kLsr);
  const auto d = rig.add_router("D", hw::RouterType::kLer);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, d, 100e6, 1e-3);
  rig.deliver_into_stats();
  const auto lsp = rig.cp.establish_lsp({a, b, d}, pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  DropAccountant drops(rig.net);
  FlowSpec spec{1, a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.2999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);
  probe.start();

  FaultInjector injector(rig.net, rig.cp);
  // Garble B's transit binding at 100 ms; the audit runs 50 ms later.
  const auto index = injector.inject(FaultSpec{
      FaultKind::kCorrupt, 0.1, b, 0, /*duration=*/0.05, /*salt=*/7});
  rig.net.run();

  auto& routing = rig.net.node_as<core::EmbeddedRouter>(b).routing();
  const auto& rec = injector.records()[index];
  EXPECT_TRUE(rec.injected);
  EXPECT_TRUE(rec.corrupted);
  EXPECT_EQ(rec.resynced, 1u);
  EXPECT_EQ(routing.corruptions(), 1u);
  EXPECT_EQ(routing.resyncs(), 1u);

  // During the 50 ms divergence window B forwarded onto a label D never
  // bound: those packets died accountably, and delivery resumed after
  // the resync.
  const auto& flow = rig.stats.flow(1);
  EXPECT_GT(drops.drops(1), 0u);
  EXPECT_GE(flow.delivered, flow.sent - 55);
  EXPECT_EQ(flow.sent, flow.delivered + drops.drops(1));
}

TEST(FaultInjector, CorruptEntryWorksOnBothSoftwareAndRtlEngines) {
  const mpls::LabelPair pair{40, 50, mpls::LabelOp::kSwap};

  sw::LinearEngine linear;
  ASSERT_TRUE(linear.write_pair(2, pair));
  EXPECT_FALSE(linear.corrupt_entry(2, 99, 60));  // no such key
  ASSERT_TRUE(linear.corrupt_entry(2, 40, 60));
  auto hit = linear.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 60u);

  sw::HwEngine rtl;
  ASSERT_TRUE(rtl.write_pair(2, pair));
  EXPECT_FALSE(rtl.corrupt_entry(2, 99, 60));
  ASSERT_TRUE(rtl.corrupt_entry(2, 40, 60));
  hit = rtl.lookup(2, 40);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->new_label, 60u) << "the label BRAM itself must diverge";
}

TEST(FaultInjector, CampaignsAreDeterministicPerSeed) {
  Rig rig;
  const auto a = rig.add_router("A", hw::RouterType::kLer);
  const auto b = rig.add_router("B", hw::RouterType::kLsr);
  const auto c = rig.add_router("C", hw::RouterType::kLer);
  rig.net.connect(a, b, 100e6, 1e-3);
  rig.net.connect(b, c, 100e6, 1e-3);

  FaultInjector injector(rig.net, rig.cp);
  const auto one = injector.generate_campaign(1234, 40, 0.1, 1.0);
  const auto two = injector.generate_campaign(1234, 40, 0.1, 1.0);
  const auto other = injector.generate_campaign(99, 40, 0.1, 1.0);
  ASSERT_EQ(one.size(), two.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].kind, two[i].kind);
    EXPECT_DOUBLE_EQ(one[i].at, two[i].at);
    EXPECT_EQ(one[i].a, two[i].a);
    EXPECT_EQ(one[i].b, two[i].b);
    EXPECT_DOUBLE_EQ(one[i].duration, two[i].duration);
    EXPECT_EQ(one[i].salt, two[i].salt);
  }
  // A different seed produces a different campaign.
  bool differs = other.size() != one.size();
  for (std::size_t i = 0; !differs && i < one.size(); ++i) {
    differs = one[i].at != other[i].at || one[i].kind != other[i].kind;
  }
  EXPECT_TRUE(differs);

  // Every fault lands inside the requested window, flaps stay under the
  // detection window, and outages outlast it.
  for (const auto& spec : one) {
    EXPECT_GE(spec.at, 0.1);
    EXPECT_LT(spec.at, 1.0);
    if (spec.kind == FaultKind::kFlap) {
      EXPECT_LT(spec.duration, 30e-3);
    } else if (spec.kind != FaultKind::kCorrupt) {
      EXPECT_GE(spec.duration, 60e-3);
    }
  }
}

// The >= 50-fault acceptance stress lives in test_fault_campaigns.cpp
// (ctest label `slow`), where it runs against both the golden engine
// and the sharded parallel plane.

}  // namespace
}  // namespace empls::net
