// Tests for hello-based failure detection and automatic LSP restoration.
#include <gtest/gtest.h>

#include <memory>

#include "core/embedded_router.hpp"
#include "net/failure_detector.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

namespace empls::net {
namespace {

struct Rig {
  Network net;
  ControlPlane cp{net};
  FlowStats stats;
  NodeId a, b, c, d;

  NodeId add_router(const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  }

  Rig() {
    a = add_router("A", hw::RouterType::kLer);
    b = add_router("B", hw::RouterType::kLsr);
    c = add_router("C", hw::RouterType::kLsr);
    d = add_router("D", hw::RouterType::kLer);
    net.connect(a, b, 100e6, 1e-3);
    net.connect(b, d, 100e6, 1e-3);   // primary
    net.connect(b, c, 100e6, 2e-3);   // protection
    net.connect(c, d, 100e6, 2e-3);
    net.set_delivery_handler([this](NodeId, const mpls::Packet& p) {
      stats.on_delivered(p, net.now());
    });
  }
};

mpls::Prefix pfx(const char* t) { return *mpls::Prefix::parse(t); }

TEST(FailureDetector, DetectsAndReroutesWithinDeadInterval) {
  Rig rig;
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());

  FailureDetector fd(rig.net, rig.cp, /*hello=*/10e-3,
                     /*dead_multiplier=*/3);
  fd.watch_all();
  fd.start(/*stop_at=*/1.0);
  EXPECT_DOUBLE_EQ(fd.detection_time(), 30e-3);

  // Probe flow: 1000 pps.
  FlowSpec spec{1, rig.a, mpls::Ipv4Address{1},
                *mpls::Ipv4Address::parse("10.1.0.5"), 6, 100, 0.0, 0.9999};
  CbrSource probe(rig.net, spec, &rig.stats, 1e-3);
  probe.start();

  rig.net.events().schedule_at(0.5, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();

  // Exactly one failure declared, the LSP rerouted over B-C-D.
  ASSERT_EQ(fd.events().size(), 1u);
  const auto& event = fd.events()[0];
  EXPECT_EQ(event.rerouted, 1u);
  EXPECT_EQ(event.unrestorable, 0u);
  EXPECT_GE(event.detected_at, 0.5 + 2 * 10e-3);
  EXPECT_LE(event.detected_at, 0.5 + 4 * 10e-3);

  // Loss is bounded by the detection window (~30 ms at 1000 pps, plus
  // in-flight packets).
  const auto& flow = rig.stats.flow(1);
  const auto lost = flow.sent - flow.delivered;
  EXPECT_GE(lost, 18u);  // >= 2 hello periods of blackholing
  EXPECT_LE(lost, 45u);
}

TEST(FailureDetector, UnrestorableWhenNoAlternative) {
  Rig rig;
  // An LSP that must use A-B; kill A-B and nothing can replace it.
  const auto lsp = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                        pfx("10.1.0.0/16"));
  ASSERT_TRUE(lsp.has_value());
  FailureDetector fd(rig.net, rig.cp, 10e-3, 2);
  fd.watch(rig.a, rig.b);
  fd.start(0.5);
  rig.net.set_connection_up(rig.a, rig.b, false);
  rig.net.run();
  ASSERT_EQ(fd.events().size(), 1u);
  EXPECT_EQ(fd.events()[0].rerouted, 0u);
  EXPECT_EQ(fd.events()[0].unrestorable, 1u);
}

TEST(FailureDetector, RecoveryReArmsDetection) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.d}, pfx("10.1.0.0/16"));
  FailureDetector fd(rig.net, rig.cp, 10e-3, 2);
  fd.watch(rig.b, rig.d);
  fd.start(1.0);
  // Fail, restore, fail again: two distinct detections.
  rig.net.events().schedule_at(0.1, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.events().schedule_at(0.3, [&] {
    rig.net.set_connection_up(rig.b, rig.d, true);
  });
  rig.net.events().schedule_at(0.5, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();
  EXPECT_EQ(fd.events().size(), 2u);
}

TEST(FailureDetector, BlipShorterThanDeadIntervalIsIgnored) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.d}, pfx("10.1.0.0/16"));
  FailureDetector fd(rig.net, rig.cp, 10e-3, 3);
  fd.watch(rig.b, rig.d);
  fd.start(0.5);
  // Down for a single hello period only.
  rig.net.events().schedule_at(0.1, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.events().schedule_at(0.115, [&] {
    rig.net.set_connection_up(rig.b, rig.d, true);
  });
  rig.net.run();
  EXPECT_TRUE(fd.events().empty()) << "transient blips must not reroute";
}

TEST(FailureDetector, StartPastTheHorizonIsAnExplicitNoOp) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.d}, pfx("10.1.0.0/16"));
  FailureDetector fd(rig.net, rig.cp, /*hello=*/10e-3, 3);
  fd.watch(rig.b, rig.d);

  // The first hello would land past the horizon: the detector must
  // refuse to arm (and say so) instead of silently never polling.
  EXPECT_FALSE(fd.start(/*stop_at=*/5e-3));
  EXPECT_FALSE(fd.started());
  rig.net.set_connection_up(rig.b, rig.d, false);
  rig.net.run();
  EXPECT_TRUE(fd.events().empty());

  // A later start() with a usable horizon arms the timer normally.
  rig.net.set_connection_up(rig.b, rig.d, true);
  EXPECT_TRUE(fd.start(/*stop_at=*/1.0));
  EXPECT_TRUE(fd.started());
  rig.net.events().schedule_at(0.1, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();
  EXPECT_EQ(fd.events().size(), 1u);
}

TEST(FailureDetector, MidCountRecoveryResetsConsecutiveMisses) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.d}, pfx("10.1.0.0/16"));
  FailureDetector fd(rig.net, rig.cp, /*hello=*/10e-3,
                     /*dead_multiplier=*/3);
  fd.watch(rig.b, rig.d);
  fd.start(0.5);

  // Two outages of two hello periods each, separated by one good hello:
  // each accumulates 2 consecutive misses, under the dead multiplier of
  // 3 — the reset in between must keep the sum from ever declaring.
  rig.net.events().schedule_at(0.101, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.events().schedule_at(0.125, [&] {
    rig.net.set_connection_up(rig.b, rig.d, true);
  });
  rig.net.events().schedule_at(0.135, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.events().schedule_at(0.155, [&] {
    rig.net.set_connection_up(rig.b, rig.d, true);
  });
  rig.net.run();
  EXPECT_TRUE(fd.events().empty())
      << "consecutive-miss counting must reset on any good hello";

  // A genuine dead interval afterwards is still detected.
  fd.start(1.0);
  rig.net.events().schedule_at(0.6, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
  });
  rig.net.run();
  EXPECT_EQ(fd.events().size(), 1u);
}

TEST(FailureDetector, SimultaneousFailuresRestoreIndependently) {
  Rig rig;
  // A fifth router gives both victims an alternative: B-E-D survives
  // when B-D and C-D die together.
  const auto e = rig.add_router("E", hw::RouterType::kLsr);
  rig.net.connect(rig.b, e, 100e6, 1e-3);
  rig.net.connect(e, rig.d, 100e6, 1e-3);

  const auto lsp1 = rig.cp.establish_lsp({rig.a, rig.b, rig.d},
                                         pfx("10.1.0.0/16"));
  const auto lsp2 = rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d},
                                         pfx("10.2.0.0/16"));
  ASSERT_TRUE(lsp1.has_value());
  ASSERT_TRUE(lsp2.has_value());

  FailureDetector fd(rig.net, rig.cp, 10e-3, 3);
  fd.watch_all();
  fd.start(0.5);
  // Both primaries die in the same instant; each LSP must find its own
  // way around (both end up using B-E-D, which has capacity for both).
  rig.net.events().schedule_at(0.1, [&] {
    rig.net.set_connection_up(rig.b, rig.d, false);
    rig.net.set_connection_up(rig.c, rig.d, false);
  });
  rig.net.run();

  ASSERT_EQ(fd.events().size(), 2u);
  unsigned rerouted = 0;
  for (const auto& event : fd.events()) {
    rerouted += event.rerouted;
    EXPECT_EQ(event.unrestorable, 0u);
  }
  EXPECT_EQ(rerouted, 2u);
  // Restoration re-signs each LSP as a new record; exactly two are live
  // and neither crosses a dead link.
  unsigned live = 0;
  for (std::uint32_t i = 0; i < rig.cp.num_lsps(); ++i) {
    const auto& rec = rig.cp.lsp(LspId{i});
    if (rec.labels.empty()) {
      continue;
    }
    ++live;
    for (std::size_t h = 0; h + 1 < rec.path.size(); ++h) {
      const bool crosses_bd = (rec.path[h] == rig.b && rec.path[h + 1] == rig.d) ||
                              (rec.path[h] == rig.d && rec.path[h + 1] == rig.b);
      const bool crosses_cd = (rec.path[h] == rig.c && rec.path[h + 1] == rig.d) ||
                              (rec.path[h] == rig.d && rec.path[h + 1] == rig.c);
      EXPECT_FALSE(crosses_bd || crosses_cd);
    }
  }
  EXPECT_EQ(live, 2u);
}

TEST(FailureDetector, WatchAllCoversTheTopology) {
  Rig rig;
  rig.cp.establish_lsp({rig.a, rig.b, rig.c, rig.d}, pfx("10.1.0.0/16"));
  FailureDetector fd(rig.net, rig.cp, 10e-3, 2);
  fd.watch_all();
  fd.start(0.5);
  rig.net.set_connection_up(rig.b, rig.c, false);  // middle of the path
  rig.net.run();
  ASSERT_EQ(fd.events().size(), 1u);
  EXPECT_EQ(fd.events()[0].rerouted, 1u);
}

}  // namespace
}  // namespace empls::net
