// Unit tests for the scenario parser: directive coverage, unit
// suffixes, and error reporting with line numbers.
#include <gtest/gtest.h>

#include "net/scenario.hpp"

namespace empls::net {
namespace {

Scenario parse_ok(std::string_view text) {
  auto result = Scenario::parse(text);
  if (const auto* err = std::get_if<ScenarioError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<Scenario>(std::move(result));
}

ScenarioError parse_err(std::string_view text) {
  auto result = Scenario::parse(text);
  if (!std::holds_alternative<ScenarioError>(result)) {
    ADD_FAILURE() << "expected a parse error";
    return {};
  }
  return std::get<ScenarioError>(result);
}

TEST(ScenarioUnits, Bandwidth) {
  EXPECT_DOUBLE_EQ(*parse_bandwidth("100M"), 100e6);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("2.5G"), 2.5e9);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("64k"), 64e3);
  EXPECT_DOUBLE_EQ(*parse_bandwidth("1200"), 1200.0);
  EXPECT_FALSE(parse_bandwidth("fast"));
  EXPECT_FALSE(parse_bandwidth(""));
  EXPECT_FALSE(parse_bandwidth("-3M"));
}

TEST(ScenarioUnits, Time) {
  EXPECT_DOUBLE_EQ(*parse_time("20ms"), 0.020);
  EXPECT_DOUBLE_EQ(*parse_time("50us"), 50e-6);
  EXPECT_DOUBLE_EQ(*parse_time("3ns"), 3e-9);
  EXPECT_DOUBLE_EQ(*parse_time("1s"), 1.0);
  EXPECT_DOUBLE_EQ(*parse_time("0.5"), 0.5);
  EXPECT_FALSE(parse_time("soon"));
  EXPECT_FALSE(parse_time("-1ms"));
}

TEST(ScenarioParse, FullFeaturedScenario) {
  const auto s = parse_ok(R"(
# a comment
qos wrr capacity=16 red
router A ler engine=hw clock=25M
router B lsr
router C lsr
router D ler
link A B 10M 1ms
link B C 10M 1ms
link C D 10M 1ms
lsp 10.1.0.0/16 A B C D bw=2M php
lsp-cspf 10.2.0.0/16 A D
tunnel T1 B C D
lsp-via-tunnel 10.3.0.0/16 pre A B tunnel T1 post D bw=1M
flow cbr 1 A 10.1.0.5 cos=6 size=160 interval=20ms start=0.1s stop=0.9s
flow poisson 2 A 10.2.0.5 rate=500 seed=7
flow video 3 A 10.3.0.5 fps=25 ppf=4
flow onoff 4 A 10.1.0.6 rate=200 on=40ms off=60ms
fail 0.3 B C
restore 0.5 B C
run 1s
)");
  EXPECT_EQ(s.qos.scheduler, SchedulerKind::kWeightedRoundRobin);
  EXPECT_EQ(s.qos.drop, DropPolicy::kRed);
  EXPECT_EQ(s.qos.queue_capacity, 16u);
  ASSERT_EQ(s.routers.size(), 4u);
  EXPECT_TRUE(s.routers[0].is_ler);
  EXPECT_EQ(s.routers[0].engine, "hw");
  EXPECT_DOUBLE_EQ(s.routers[0].clock_hz, 25e6);
  EXPECT_EQ(s.links.size(), 3u);
  ASSERT_EQ(s.lsps.size(), 2u);
  EXPECT_TRUE(s.lsps[0].php);
  EXPECT_DOUBLE_EQ(s.lsps[0].bw, 2e6);
  EXPECT_TRUE(s.lsps[1].cspf);
  ASSERT_EQ(s.tunnels.size(), 1u);
  EXPECT_EQ(s.tunnels[0].path.size(), 3u);
  ASSERT_EQ(s.tunnel_lsps.size(), 1u);
  EXPECT_EQ(s.tunnel_lsps[0].pre, (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(s.tunnel_lsps[0].tunnel, "T1");
  ASSERT_EQ(s.flows.size(), 4u);
  EXPECT_EQ(s.flows[0].kind, "cbr");
  EXPECT_DOUBLE_EQ(s.flows[0].start, 0.1);
  EXPECT_EQ(s.flows[3].kind, "onoff");
  ASSERT_EQ(s.link_events.size(), 2u);
  EXPECT_FALSE(s.link_events[0].up);
  EXPECT_TRUE(s.link_events[1].up);
  ASSERT_TRUE(s.run_duration.has_value());
  EXPECT_DOUBLE_EQ(*s.run_duration, 1.0);
}

TEST(ScenarioParse, EngineKindsAcceptedAndRejected) {
  const auto s = parse_ok(
      "router A ler engine=trie\n"
      "router B lsr engine=sharded:4:trie\n"
      "router C lsr engine=sharded:2:simd\n"
      "router D lsr engine=sharded:8\n");
  ASSERT_EQ(s.routers.size(), 4u);
  EXPECT_EQ(s.routers[0].engine, "trie");
  EXPECT_EQ(s.routers[1].engine, "sharded:4:trie");
  EXPECT_EQ(s.routers[2].engine, "sharded:2:simd");
  EXPECT_EQ(s.routers[3].engine, "sharded:8");

  EXPECT_NE(parse_err("router A ler engine=patricia\n")
                .message.find("unknown engine"),
            std::string::npos);
  EXPECT_NE(parse_err("router A ler engine=sharded:4:hash\n")
                .message.find("replica"),
            std::string::npos);
  EXPECT_NE(parse_err("router A ler engine=sharded:0:trie\n")
                .message.find("sharded"),
            std::string::npos);
  EXPECT_NE(parse_err("router A ler engine=sharded::trie\n")
                .message.find("sharded"),
            std::string::npos);
}

TEST(ScenarioParse, ErrorsCarryLineNumbers) {
  const auto err = parse_err("router A ler\nrouter B lsr\nlink A Z 10M 1ms\n");
  EXPECT_EQ(err.line, 3);
  EXPECT_NE(err.message.find("undeclared"), std::string::npos);
}

TEST(ScenarioParse, RejectsUnknownDirective) {
  EXPECT_EQ(parse_err("teleport A B\n").line, 1);
}

TEST(ScenarioParse, RejectsDuplicateRouter) {
  const auto err = parse_err("router A ler\nrouter A lsr\n");
  EXPECT_EQ(err.line, 2);
}

TEST(ScenarioParse, RejectsBadValues) {
  EXPECT_NE(parse_err("router A ler\nrouter B ler\nlink A B fast 1ms\n")
                .message.find("bandwidth"),
            std::string::npos);
  EXPECT_NE(parse_err("router A ler\nflow cbr x A 10.0.0.1\n")
                .message.find("flow id"),
            std::string::npos);
  EXPECT_NE(parse_err("router A ler\nflow cbr 1 A not-an-ip\n")
                .message.find("destination"),
            std::string::npos);
  EXPECT_NE(parse_err("router A ler\nflow cbr 1 A 10.0.0.1 cos=9\n")
                .message.find("cos"),
            std::string::npos);
  EXPECT_NE(parse_err("lsp 10.0.0.0/99 A B\n").message.find("prefix"),
            std::string::npos);
}

TEST(ScenarioParse, RejectsShortDeclarations) {
  EXPECT_EQ(parse_err("router A\n").line, 1);
  EXPECT_EQ(parse_err("router A ler\nlink A\n").line, 2);
  EXPECT_EQ(parse_err("router A ler\nrouter B ler\nlsp 10.0.0.0/8 A\n").line,
            3);
  EXPECT_EQ(parse_err("run\n").line, 1);
}

TEST(ScenarioParse, CspfTakesExactlyTwoNodes) {
  const auto err = parse_err(
      "router A ler\nrouter B lsr\nrouter C ler\n"
      "link A B 1M 1ms\nlink B C 1M 1ms\n"
      "lsp-cspf 10.0.0.0/8 A B C\n");
  EXPECT_EQ(err.line, 6);
}

TEST(ScenarioParse, OamPolicerAutorepairDirectives) {
  const auto s = parse_ok(R"(
router A ler
router B ler
link A B 10M 1ms
police A 7 2M burst=3000 demote
ping 0.1 A 10.0.0.1
traceroute 0.2s A 10.0.0.2
autorepair 20ms dead=5
)");
  ASSERT_EQ(s.policers.size(), 1u);
  EXPECT_EQ(s.policers[0].ingress, "A");
  EXPECT_EQ(s.policers[0].flow_id, 7u);
  EXPECT_DOUBLE_EQ(s.policers[0].rate_bps, 2e6);
  EXPECT_DOUBLE_EQ(s.policers[0].burst_bytes, 3000);
  EXPECT_TRUE(s.policers[0].demote);
  ASSERT_EQ(s.oam_probes.size(), 2u);
  EXPECT_FALSE(s.oam_probes[0].traceroute);
  EXPECT_TRUE(s.oam_probes[1].traceroute);
  EXPECT_DOUBLE_EQ(s.oam_probes[1].at, 0.2);
  ASSERT_TRUE(s.autorepair_hello.has_value());
  EXPECT_DOUBLE_EQ(*s.autorepair_hello, 0.020);
  EXPECT_EQ(s.autorepair_dead, 5u);
}

TEST(ScenarioParse, OamPolicerErrors) {
  EXPECT_EQ(parse_err("router A ler\nping 0.1 Z 10.0.0.1\n").line, 2);
  EXPECT_EQ(parse_err("router A ler\nping 0.1 A not-an-ip\n").line, 2);
  EXPECT_EQ(parse_err("router A ler\npolice A x 1M\n").line, 2);
  EXPECT_EQ(parse_err("router A ler\npolice A 1 fast\n").line, 2);
  EXPECT_EQ(parse_err("autorepair soon\n").line, 1);
}

TEST(ScenarioParse, FaultAndProtectionDirectives) {
  const auto s = parse_ok(R"(
router A ler
router B lsr
router C ler
link A B 10M 1ms
link B C 10M 1ms
protect bw=500k
flap 0.1 A B 15ms
crash 0.2s B for=100ms
crash 0.4 B
corrupt 0.3 B salt=7 resync=20ms
corrupt 0.5s B
)");
  EXPECT_TRUE(s.protect);
  EXPECT_DOUBLE_EQ(s.protect_bw, 500e3);

  ASSERT_EQ(s.flaps.size(), 1u);
  EXPECT_DOUBLE_EQ(s.flaps[0].at, 0.1);
  EXPECT_EQ(s.flaps[0].a, "A");
  EXPECT_EQ(s.flaps[0].b, "B");
  EXPECT_DOUBLE_EQ(s.flaps[0].down_for, 0.015);

  ASSERT_EQ(s.crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(s.crashes[0].at, 0.2);
  EXPECT_EQ(s.crashes[0].node, "B");
  EXPECT_DOUBLE_EQ(s.crashes[0].duration, 0.1);
  EXPECT_DOUBLE_EQ(s.crashes[1].duration, 0.0) << "no for= means stays dead";

  ASSERT_EQ(s.corruptions.size(), 2u);
  EXPECT_DOUBLE_EQ(s.corruptions[0].at, 0.3);
  EXPECT_EQ(s.corruptions[0].node, "B");
  EXPECT_EQ(s.corruptions[0].salt, 7u);
  EXPECT_DOUBLE_EQ(s.corruptions[0].resync, 0.020);
  EXPECT_EQ(s.corruptions[1].salt, 0u);
  EXPECT_DOUBLE_EQ(s.corruptions[1].resync, 0.0) << "no resync= means never";
}

TEST(ScenarioParse, BareProtectDefaultsToZeroBandwidth) {
  const auto s = parse_ok("router A ler\nprotect\n");
  EXPECT_TRUE(s.protect);
  EXPECT_DOUBLE_EQ(s.protect_bw, 0.0);
}

TEST(ScenarioParse, FaultDirectiveErrors) {
  const char* topo = "router A ler\nrouter B ler\nlink A B 10M 1ms\n";
  const auto with = [&](const char* line) {
    return parse_err(std::string(topo) + line);
  };
  // flap wants exactly <time> <a> <b> <down-for> with a positive outage.
  EXPECT_EQ(with("flap 0.1 A B\n").line, 4);
  EXPECT_EQ(with("flap 0.1 A B 0ms\n").line, 4);
  EXPECT_EQ(with("flap 0.1 A Z 10ms\n").line, 4);
  EXPECT_EQ(with("flap soon A B 10ms\n").line, 4);
  // crash/corrupt want a known node and parsable options.
  EXPECT_EQ(with("crash 0.1 Z\n").line, 4);
  EXPECT_EQ(with("crash 0.1 B for=soon\n").line, 4);
  EXPECT_EQ(with("corrupt 0.1 Z\n").line, 4);
  EXPECT_EQ(with("corrupt 0.1 B salt=x\n").line, 4);
  EXPECT_EQ(with("corrupt 0.1 B resync=soon\n").line, 4);
  // protect takes only the bw option.
  EXPECT_EQ(with("protect bw=fast\n").line, 4);
}

TEST(ScenarioParse, TrailingCommentsIgnored) {
  const auto s = parse_ok("router A ler # the ingress\n");
  ASSERT_EQ(s.routers.size(), 1u);
}

TEST(ScenarioParse, TelemetryDirectives) {
  const auto s = parse_ok(
      "router A ler\n"
      "sample 50ms\n"
      "timeline out.csv\n"
      "profile\n"
      "run 1\n");
  ASSERT_TRUE(s.sample_interval.has_value());
  EXPECT_DOUBLE_EQ(*s.sample_interval, 0.05);
  EXPECT_EQ(s.timeline_path, "out.csv");
  EXPECT_TRUE(s.profile);
}

TEST(ScenarioParse, TelemetryDirectivesEqualsSpellingAndOff) {
  const auto s = parse_ok(
      "router A ler\n"
      "sample=0.1s\n"
      "timeline=off\n"
      "profile off\n"
      "run 1\n");
  ASSERT_TRUE(s.sample_interval.has_value());
  EXPECT_DOUBLE_EQ(*s.sample_interval, 0.1);
  EXPECT_TRUE(s.timeline_path.empty());
  EXPECT_FALSE(s.profile);
}

TEST(ScenarioParse, ExpectDirectives) {
  const auto s = parse_ok(
      "router A ler\n"
      "sample 100ms\n"
      "expect empls_delivered_total > 100\n"
      "expect empls_loadgen_latency_ns.p999 <= 2e6 during 0.2s..0.8s\n"
      "expect empls_drops_total{reason=\"policer\"} == 0\n"
      "run 1\n");
  ASSERT_EQ(s.expects.size(), 3u);

  EXPECT_EQ(s.expects[0].metric, "empls_delivered_total");
  EXPECT_EQ(s.expects[0].op, ExpectDecl::Op::kGt);
  EXPECT_DOUBLE_EQ(s.expects[0].value, 100.0);
  EXPECT_FALSE(s.expects[0].windowed);
  EXPECT_EQ(s.expects[0].line, 3);

  EXPECT_EQ(s.expects[1].metric, "empls_loadgen_latency_ns.p999");
  EXPECT_EQ(s.expects[1].op, ExpectDecl::Op::kLe);
  EXPECT_TRUE(s.expects[1].windowed);
  EXPECT_DOUBLE_EQ(s.expects[1].t0, 0.2);
  EXPECT_DOUBLE_EQ(s.expects[1].t1, 0.8);

  // A braced label body survives tokenisation as one token.
  EXPECT_EQ(s.expects[2].metric, "empls_drops_total{reason=\"policer\"}");
  EXPECT_EQ(s.expects[2].op, ExpectDecl::Op::kEq);
}

TEST(ScenarioParse, TelemetryDirectiveErrors) {
  // sample needs a positive interval and a run duration.
  EXPECT_GT(parse_err("router A ler\nsample 0\nrun 1\n").line, 0);
  EXPECT_EQ(parse_err("router A ler\nsample 10ms\n").message,
            "sample requires a run duration");
  EXPECT_EQ(parse_err("router A ler\nsample 10ms\n").line, 2);
  // timeline output is meaningless without sampling.
  EXPECT_EQ(parse_err("router A ler\ntimeline x.csv\nrun 1\n").message,
            "timeline output requires a sample interval");
  EXPECT_EQ(parse_err("router A ler\ntimeline x.csv\nrun 1\n").line, 2);
  // expect wants <metric> <op> <value>, a known operator, and a sane
  // window.
  EXPECT_EQ(parse_err("router A ler\nexpect empls_x >\nrun 1\n").line, 2);
  EXPECT_EQ(parse_err("router A ler\nexpect empls_x ~ 3\nrun 1\n").line, 2);
  EXPECT_EQ(
      parse_err("router A ler\nexpect empls_x < umpteen\nrun 1\n").line, 2);
  EXPECT_EQ(parse_err("router A ler\nsample 10ms\n"
                      "expect empls_x < 1 during 0.5s..0.2s\nrun 1\n")
                .line,
            3);
  // A windowed expect without a sample cadence has nothing to check.
  const auto err = parse_err(
      "router A ler\nexpect empls_x < 1 during 0s..1s\nrun 1\n");
  EXPECT_EQ(err.line, 2);
  EXPECT_NE(err.message.find("sample interval"), std::string::npos);
}

TEST(ScenarioParse, ExpectOperatorSpellings) {
  const auto s = parse_ok(
      "router A ler\n"
      "expect m1 < 1\nexpect m2 <= 1\nexpect m3 > 1\n"
      "expect m4 >= 1\nexpect m5 == 1\nexpect m6 != 1\n"
      "run 1\n");
  ASSERT_EQ(s.expects.size(), 6u);
  EXPECT_EQ(s.expects[0].op, ExpectDecl::Op::kLt);
  EXPECT_EQ(s.expects[1].op, ExpectDecl::Op::kLe);
  EXPECT_EQ(s.expects[2].op, ExpectDecl::Op::kGt);
  EXPECT_EQ(s.expects[3].op, ExpectDecl::Op::kGe);
  EXPECT_EQ(s.expects[4].op, ExpectDecl::Op::kEq);
  EXPECT_EQ(s.expects[5].op, ExpectDecl::Op::kNe);
}

}  // namespace
}  // namespace empls::net
