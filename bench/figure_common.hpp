// Shared scaffolding for the Figure 14-16 waveform reproductions.
//
// Each figure drives the information base exactly as the paper's
// simulations do — ten label pairs written, then one lookup — while a
// TraceRecorder samples the paper's signal set.  The benches render the
// lookup window as an ASCII waveform, write a standard VCD file (open it
// in GTKWave to see the figure), and verify the narrative events the
// paper describes.
#pragma once

#include <string>

#include "bench_util.hpp"
#include "hw/label_stack_modifier.hpp"
#include "mpls/operations.hpp"
#include "rtl/trace.hpp"

namespace empls::bench {

/// The paper's Figure 14 write set: "The operation is arbitrarily chosen
/// for each label pair but no two consecutive entries are given the same
/// operation."  This cycle (PUSH, SWAP, POP, ...) reproduces the
/// published lookup result: entry 604 (5th, index 4) stores operation 3
/// (SWAP), matching "The new label (504) and operation (3) then appear."
inline mpls::LabelOp figure_op(unsigned i) {
  static constexpr mpls::LabelOp kCycle[3] = {
      mpls::LabelOp::kPush, mpls::LabelOp::kSwap, mpls::LabelOp::kPop};
  return kCycle[i % 3];
}

struct FigureRig {
  hw::LabelStackModifier modifier;
  rtl::TraceRecorder trace;

  explicit FigureRig(unsigned level) : trace(modifier.sim()) {
    modifier.attach_figure_probes(trace, level);
  }

  /// Write the figure's ten pairs into `level`.  `first_index` is 600
  /// for the level-1 figure (packet identifiers) and 1 for level 2
  /// (old label values); new labels are 500..509 in both.
  void write_ten_pairs(unsigned level, rtl::u32 first_index) {
    for (rtl::u32 i = 0; i < 10; ++i) {
      modifier.write_pair(
          level, mpls::LabelPair{first_index + i, 500 + i, figure_op(i)});
    }
  }

  /// Render the waveform window around the lookup and write the VCD.
  void emit(const std::string& vcd_path, std::size_t window_first,
            std::size_t window_last) {
    std::printf("\n--- waveform (cycles %zu..%zu) ---\n", window_first,
                window_last);
    std::printf("%s", trace.render_ascii(window_first, window_last).c_str());
    if (trace.write_vcd(vcd_path)) {
      std::printf("--- full trace written to %s ---\n\n", vcd_path.c_str());
    } else {
      std::printf("--- could not write %s ---\n\n", vcd_path.c_str());
    }
  }
};

}  // namespace empls::bench
