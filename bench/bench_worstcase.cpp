// Reproduces the Section 4 worst-case analysis:
//
//   "Assuming that there are no delays between operations, the worst
//    case number of cycles required to reset the architecture, push
//    three stack entries, fill an entire level with 1024 label pairs and
//    perform a swap would be 6167 cycles.  Therefore, an FPGA like the
//    Altera Stratix EP1S40F780C5 with a 50MHz clock could perform those
//    operations in approximately 0.123 ms."
//
// The sequence is executed on the cycle-accurate RTL model and the total
// is cross-checked against the closed-form cost model.
#include "bench_util.hpp"
#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"
#include "rtl/clock_model.hpp"

using namespace empls;

int main() {
  std::printf("== Section 4 worst case: reprogram a full level ==\n\n");
  bench::Checks checks;
  bench::Table table({"Step", "Paper (cycles)", "Measured (cycles)"});

  hw::LabelStackModifier m;
  rtl::u64 total = 0;

  const auto reset_c = m.do_reset();
  table.add_row({"Reset the architecture", "3", std::to_string(reset_c)});
  total += reset_c;

  rtl::u64 push_c = 0;
  for (rtl::u32 i = 0; i < 3; ++i) {
    push_c += m.user_push(mpls::LabelEntry{100 + i, 0, false, 255});
  }
  table.add_row({"Push three stack entries", "9", std::to_string(push_c)});
  total += push_c;

  rtl::u64 fill_c = 0;
  for (rtl::u32 i = 0; i < 1023; ++i) {
    fill_c += m.write_pair(3, mpls::LabelPair{5000 + i, 9000 + i,
                                              mpls::LabelOp::kSwap});
  }
  // Final pair matches the stack top so the closing swap's search scans
  // the whole level (worst hit position).
  fill_c += m.write_pair(3, mpls::LabelPair{102, 4242, mpls::LabelOp::kSwap});
  table.add_row({"Fill an entire level (1024 pairs)", "3072",
                 std::to_string(fill_c)});
  total += fill_c;

  const auto upd = m.update(3, hw::RouterType::kLsr, 0);
  table.add_row({"Swap (search 3*1024+5, tail 6)", "3083",
                 std::to_string(upd.cycles)});
  total += upd.cycles;

  table.add_row({"TOTAL", "6167", std::to_string(total)});
  table.print();
  table.write_csv("worstcase.csv");

  checks.expect_true("swap not discarded", !upd.discarded);
  checks.expect_eq("total worst-case cycles", 6167,
                   static_cast<long long>(total));
  checks.expect_eq("closed-form model agrees", 6167,
                   static_cast<long long>(hw::worst_case_cycles(1024)));

  const rtl::ClockModel clock;  // 50 MHz, the paper's Stratix target
  std::printf("\nat %.0f MHz: %.5f ms (paper: ~0.123 ms)\n",
              clock.frequency_hz() / 1e6, clock.milliseconds(total));
  checks.expect_true("time within 0.122..0.125 ms",
                     clock.milliseconds(total) > 0.122 &&
                         clock.milliseconds(total) < 0.125);
  return checks.exit_code();
}
