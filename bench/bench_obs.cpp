// Telemetry overhead microbench: the cost of the observability layer
// on the bench_fastpath 8-node-line workload, in four modes:
//
//   baseline — no telemetry wired at all (the pre-obs fast path);
//   armed    — metrics registry + hop tracer wired through every
//              router and link, tracer DISABLED: per-packet histogram
//              records plus one predicted branch per trace site, the
//              always-on production configuration;
//   sampled  — armed plus the telemetry timeline ticking at the 100 ms
//              sim-cadence (registry walk + delta row per tick);
//   traced   — tracer enabled: full per-hop span recording into the
//              flight-recorder ring.
//
// The gates (Release builds only): armed must hold >= 98% of baseline
// packets/sec, sampled >= 97% — i.e. always-on telemetry costs < 2%
// and arming the timeline adds at most another point.  Modes run in
// interleaved best-of rounds so machine noise does not flake the
// gates.  Also emits a Perfetto-loadable trace_sample.json from a
// short traced run, a timeline_sample.csv from a sampled run, and
// writes BENCH_obs.json for CI artifacts.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

enum class Mode { kBaseline, kArmed, kSampled, kTraced };
constexpr std::size_t kModeCount = 4;

struct ObsResult {
  double wall_s = 0;
  double packets_per_sec = 0;
  std::uint64_t delivered = 0;
  obs::HopTracer::Stats tracer;
  std::string prometheus;  // non-baseline modes only
  std::size_t timeline_samples = 0;  // kSampled only
  std::size_t timeline_series = 0;
};

ObsResult run_line(Mode mode, double sim_seconds,
                   const std::string& trace_path = {},
                   const std::string& timeline_path = {}) {
  constexpr int kNodes = 8;
  net::QosConfig qos;
  qos.queue_capacity = 256;
  net::Network net(qos);
  net.events().set_scheduler(net::SchedulerBackend::kCalendar);
  net::ControlPlane cp(net);

  std::vector<net::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    core::RouterConfig cfg;
    cfg.type = (i == 0 || i == kNodes - 1) ? hw::RouterType::kLer
                                           : hw::RouterType::kLsr;
    cfg.validate_wire = false;
    std::string name = "R";
    name += std::to_string(i);
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    ids.push_back(net.add_node(std::move(r)));
    cp.register_router(ids.back(), &raw->routing());
  }
  for (int i = 0; i + 1 < kNodes; ++i) {
    net.connect(ids[i], ids[i + 1], 1e9, 100e-6);
  }

  obs::MetricsRegistry metrics;
  obs::HopTracer tracer;
  obs::Timeline timeline;  // default: 100 ms cadence
  if (mode != Mode::kBaseline) {
    tracer.set_enabled(mode == Mode::kTraced);
    net.set_telemetry(&metrics, &tracer);
  }
  if (mode == Mode::kSampled) {
    net.set_timeline(&timeline);
    // Pre-scheduled sim-time ticks, mirroring the scenario runner's
    // `sample` directive: each tick re-exports the registry and appends
    // one delta row.
    const double dt = timeline.interval();
    const auto ticks = static_cast<std::uint64_t>(sim_seconds / dt + 1e-9);
    for (std::uint64_t k = 1; k <= ticks; ++k) {
      net.events().schedule_at(dt * static_cast<double>(k),
                               [&net, &metrics, &timeline] {
                                 net.export_metrics(metrics);
                                 timeline.sample(metrics, net.now());
                               });
    }
  }

  cp.establish_lsp(ids, *mpls::Prefix::parse("10.1.0.0/16"));

  const auto dst = *mpls::Ipv4Address::parse("10.1.0.9");
  std::vector<std::unique_ptr<net::CbrSource>> sources;
  for (std::uint32_t flow = 1; flow <= 4; ++flow) {
    net::FlowSpec spec{flow, ids.front(), {}, dst,
                       static_cast<std::uint8_t>(flow), 256,
                       0.0,  sim_seconds};
    sources.push_back(std::make_unique<net::CbrSource>(
        net, spec, nullptr, /*interval=*/100e-6));
    sources.back()->start();
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.run();
  ObsResult r;
  r.wall_s = seconds_since(t0);
  r.delivered = net.delivered_count();
  r.packets_per_sec = static_cast<double>(r.delivered) / r.wall_s;
  r.tracer = tracer.stats();
  if (mode != Mode::kBaseline) {
    net.export_metrics(metrics);
    r.prometheus = metrics.prometheus_text();
  }
  if (mode == Mode::kSampled) {
    r.timeline_samples = timeline.sample_count();
    r.timeline_series = timeline.column_count();
  }
  if (!trace_path.empty() && mode == Mode::kTraced) {
    std::ofstream out(trace_path);
    net.write_chrome_trace(out);
    if (out) {
      std::printf("wrote %s\n", trace_path.c_str());
    }
  }
  if (!timeline_path.empty() && mode == Mode::kSampled) {
    std::ofstream out(timeline_path);
    timeline.write_csv(out);
    if (out) {
      std::printf("wrote %s\n", timeline_path.c_str());
    }
  }
  return r;
}

struct Measured {
  std::array<ObsResult, kModeCount> best{};  // best rep/mode, Mode-indexed
  /// Best armed/baseline (and sampled/baseline) ratio of any single
  /// round.  The paired ratios are what the overhead gates judge: the
  /// runs execute ~0.1 s apart under the same machine conditions, so
  /// slow noise phases (CPU contention, thermal throttling) cancel
  /// instead of landing on one side of the comparison.  A real
  /// regression drags the ratio down in every round, quiet or noisy.
  double paired_ratio = 0.0;
  double sampled_paired_ratio = 0.0;
};

/// Interleaved best-of rounds, rotating the starting mode so boost
/// decay and cache warm-up do not systematically favour whichever mode
/// runs first.  Rounds continue until a paired round clears the gates
/// with margin or the cap runs out.
Measured measure_interleaved(double sim_seconds, int min_rounds,
                             int max_rounds) {
  Measured m;
  for (int i = 0; i < max_rounds; ++i) {
    std::array<double, kModeCount> round_pps{};
    for (std::size_t k = 0; k < kModeCount; ++k) {
      const Mode mode =
          static_cast<Mode>((static_cast<std::size_t>(i) + k) % kModeCount);
      ObsResult r = run_line(mode, sim_seconds);
      round_pps[static_cast<std::size_t>(mode)] = r.packets_per_sec;
      auto& b = m.best[static_cast<std::size_t>(mode)];
      if (r.packets_per_sec > b.packets_per_sec) {
        b = std::move(r);
      }
    }
    const double base = round_pps[static_cast<std::size_t>(Mode::kBaseline)];
    const double armed =
        round_pps[static_cast<std::size_t>(Mode::kArmed)] / base;
    const double sampled =
        round_pps[static_cast<std::size_t>(Mode::kSampled)] / base;
    m.paired_ratio = std::max(m.paired_ratio, armed);
    m.sampled_paired_ratio = std::max(m.sampled_paired_ratio, sampled);
    if (i + 1 >= min_rounds && m.paired_ratio >= 0.985 &&
        m.sampled_paired_ratio >= 0.975) {
      break;
    }
  }
  return m;
}

std::string human(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  std::printf("== telemetry overhead (obs)%s ==\n\n", quick ? " [quick]" : "");

  // Even --quick needs ~70ms of wall per rep: the 2% gate cannot be
  // resolved above scheduler noise on shorter runs.
  const double sim_seconds = quick ? 1.0 : 2.0;
  const auto measured = measure_interleaved(sim_seconds, /*min_rounds=*/3,
                                            /*max_rounds=*/12);
  const auto& baseline = measured.best[static_cast<std::size_t>(Mode::kBaseline)];
  const auto& armed = measured.best[static_cast<std::size_t>(Mode::kArmed)];
  const auto& sampled = measured.best[static_cast<std::size_t>(Mode::kSampled)];
  const auto& traced = measured.best[static_cast<std::size_t>(Mode::kTraced)];

  auto pct = [&](double pps) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  100.0 * pps / baseline.packets_per_sec);
    return std::string(buf);
  };
  bench::Table table({"8-node line", "pkts/sec", "vs baseline", "wall s"});
  table.add_row({"baseline (no telemetry)", human(baseline.packets_per_sec),
                 "100.0%", std::to_string(baseline.wall_s)});
  table.add_row({"armed (wired, tracer off)", human(armed.packets_per_sec),
                 pct(armed.packets_per_sec), std::to_string(armed.wall_s)});
  table.add_row({"sampled (timeline @100ms)", human(sampled.packets_per_sec),
                 pct(sampled.packets_per_sec), std::to_string(sampled.wall_s)});
  table.add_row({"traced (full spans)", human(traced.packets_per_sec),
                 pct(traced.packets_per_sec), std::to_string(traced.wall_s)});
  table.print();
  std::printf("\ntraced: %llu journeys, %llu spans (%llu overwritten by the "
              "ring), live high water %llu\n"
              "sampled: %zu timeline rows x %zu series\n\n",
              static_cast<unsigned long long>(traced.tracer.journeys),
              static_cast<unsigned long long>(traced.tracer.records),
              static_cast<unsigned long long>(traced.tracer.dropped_records),
              static_cast<unsigned long long>(traced.tracer.live_high_water),
              sampled.timeline_samples, sampled.timeline_series);

  // Perfetto sample: a short traced run keeps the artifact small.  The
  // timeline CSV comes from a 1 s sampled run (10 rows at the 100 ms
  // cadence).
  run_line(Mode::kTraced, 0.02, "trace_sample.json");
  run_line(Mode::kSampled, 1.0, {}, "timeline_sample.csv");

  // Judge the gates on the better of the cross-round best ratio and the
  // best single-round paired ratio (see Measured::paired_ratio).
  const double armed_ratio =
      std::max(armed.packets_per_sec / baseline.packets_per_sec,
               measured.paired_ratio);
  const double sampled_ratio =
      std::max(sampled.packets_per_sec / baseline.packets_per_sec,
               measured.sampled_paired_ratio);
  const double traced_ratio =
      traced.packets_per_sec / baseline.packets_per_sec;

  bench::BenchJson json("obs");
  json.set("quick", quick);
  json.set("line8.baseline.packets_per_sec", baseline.packets_per_sec);
  json.set("line8.armed.packets_per_sec", armed.packets_per_sec);
  json.set("line8.armed.ratio", armed_ratio);
  json.set("line8.armed.paired_ratio", measured.paired_ratio);
  json.set("line8.sampled.packets_per_sec", sampled.packets_per_sec);
  json.set("line8.sampled.ratio", sampled_ratio);
  json.set("line8.sampled.paired_ratio", measured.sampled_paired_ratio);
  json.set("line8.sampled.timeline_rows", sampled.timeline_samples);
  json.set("line8.sampled.timeline_series", sampled.timeline_series);
  json.set("line8.traced.packets_per_sec", traced.packets_per_sec);
  json.set("line8.traced.ratio", traced_ratio);
  json.set("line8.traced.journeys", traced.tracer.journeys);
  json.set("line8.traced.spans", traced.tracer.records);
  json.set("line8.traced.spans_overwritten", traced.tracer.dropped_records);
  json.write();
  std::printf("\n");

  bench::Checks checks;
  checks.expect_true("telemetry does not change the simulation "
                     "(delivered counts identical across modes)",
                     baseline.delivered == armed.delivered &&
                         baseline.delivered == sampled.delivered &&
                         baseline.delivered == traced.delivered);
  checks.expect_true("traced run recorded journeys and spans",
                     traced.tracer.journeys > 0 && traced.tracer.records > 0);
  checks.expect_true("armed run leaves no live journeys (tracer off)",
                     armed.tracer.journeys == 0);
  checks.expect_true("sampled run recorded one timeline row per 100ms tick",
                     sampled.timeline_samples ==
                         static_cast<std::size_t>(sim_seconds / 0.1 + 1e-9));
  checks.expect_true("sampled run tracked a non-trivial series set",
                     sampled.timeline_series >= 8);
  checks.expect_true(
      "prometheus snapshot has the engine-lookup histogram",
      armed.prometheus.find("empls_engine_lookup_cycles_bucket") !=
          std::string::npos);
  checks.expect_true(
      "prometheus snapshot has the link-transit histogram",
      armed.prometheus.find("empls_link_transit_ns_bucket") !=
          std::string::npos);
#ifdef NDEBUG
  // The headline gates, meaningful only with optimisation on.
  checks.expect_true("armed (tracer off) holds >= 98% of baseline pkts/sec",
                     armed_ratio >= 0.98);
  checks.expect_true("sampled (timeline @100ms) holds >= 97% of baseline "
                     "pkts/sec",
                     sampled_ratio >= 0.97);
#else
  std::printf("  [SKIP] overhead gates (debug build; run Release to "
              "enforce)\n");
#endif
  return checks.exit_code();
}
