// Extension experiment X6: the vectorized SoA lookup engine and the
// per-router flow cache.
//
// Part 1 — single-packet update throughput (host updates/sec) across
// the software engines, sweeping information-base occupancy 64 → 1024
// entries per level.  Linear and simd walk the same first-match-wins
// store (identical modelled Table 6 cycles); simd's win is purely how
// fast the host scans it — 16 keys per compare block instead of one.
//
// Part 2 — the flow cache on the 8-node line scenario: the same
// traffic run with engine=simd cache=off and cache=1024, plus an
// engine=linear golden run.  Cached, uncached and golden books must be
// identical (delivery counts, per-router stats, modelled engine
// cycles, latency percentiles) while the cache serves >= 90% of probes
// at steady state.
//
// Part 3 — the million-entry FIB sweep: program the trie engine to 1M
// bindings (600k level-1 host routes + 200k each at levels 2/3; the
// full run adds a 10M case, 9.2M of it level 1 since the 20-bit label
// space caps levels 2/3 near 1M distinct keys) and measure install
// (reprogram) throughput, lookup throughput over the warm base, and
// bytes/entry from TrieEngine::memory_stats — the scaling claim as a
// measurement, not an assertion.
//
// Gates (Release builds only, like bench_fastpath):
//   * simd >= 2x linear updates/sec at 1024 entries/level.  (The
//     measured linear scan speed swings almost 2x with final-link code
//     layout — adding an unrelated library moves it — so the gate
//     keeps headroom below the ~2.8x honest ratio.)
//   * trie <= 64 bytes/entry at the 1M-entry base.
// Always enforced (determinism, not speed):
//   * cache=1024 books bit-identical to cache=off and to linear;
//   * steady-state hit rate >= 90%.
//
// Results land in BENCH_lookup.json for CI artifacts; `--quick` trims
// the measurement windows for the smoke job.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/scenario_runner.hpp"
#include "sw/cam_engine.hpp"
#include "sw/hash_engine.hpp"
#include "sw/linear_engine.hpp"
#include "sw/simd_engine.hpp"
#include "sw/trie_engine.hpp"

using namespace empls;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::unique_ptr<sw::LabelEngine> make_engine(const std::string& kind) {
  if (kind == "simd") {
    return std::make_unique<sw::SimdEngine>();
  }
  if (kind == "hash") {
    return std::make_unique<sw::HashEngine>();
  }
  if (kind == "cam") {
    return std::make_unique<sw::CamEngine>();
  }
  if (kind == "trie") {
    return std::make_unique<sw::TrieEngine>();
  }
  return std::make_unique<sw::LinearEngine>();
}

/// Single-packet update throughput at a given occupancy: level 2 holds
/// `occupancy` swap bindings, packets carry a pseudo-randomly drawn key
/// (uniform over the store, so the average linear scan is half of it),
/// and each measurement window runs until `min_wall` seconds have
/// elapsed.  Best of three windows: the machine also runs CI builds,
/// and a contention spike in one window must not fail the ratio gate.
double updates_per_sec(sw::LabelEngine& engine, std::size_t occupancy,
                       double min_wall) {
  engine.clear();
  for (std::size_t i = 0; i < occupancy; ++i) {
    engine.write_pair(2, mpls::LabelPair{static_cast<rtl::u32>(1000 + i),
                                         static_cast<rtl::u32>(2000 + i),
                                         mpls::LabelOp::kSwap});
  }
  mpls::Packet p;
  p.stack.push(mpls::LabelEntry{1000, 0, false, 64});

  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t sink = 0;  // keep the work observable
  double best = 0;
  for (int window = 0; window < 3; ++window) {
    std::uint64_t done = 0;
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0;
    do {
      for (int i = 0; i < 2000; ++i) {
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        const auto key = static_cast<rtl::u32>(
            1000 + (x * 0x2545F4914F6CDD1DULL >> 33) % occupancy);
        p.stack.rewrite_top(key, 64);
        const auto out = engine.update(p, 2, hw::RouterType::kLsr);
        sink += out.hw_cycles;
      }
      done += 2000;
      elapsed = seconds_since(t0);
    } while (elapsed < min_wall);
    best = std::max(best, static_cast<double>(done) / elapsed);
  }
  if (sink == 0x51ab) {
    std::printf("~");  // never: defeats dead-code elimination
  }
  return best;
}

/// The 8-node line scenario used by the flow-cache comparison.  All
/// routers share one engine kind and one cache setting; a single CBR
/// flow crosses the full line so every router sees the same steady
/// (level, key) stream.
std::string line_scenario(const std::string& engine,
                          const std::string& cache, double stop_s) {
  std::string s = "scheduler calendar\n";
  for (int i = 0; i < 8; ++i) {
    s += "router R" + std::to_string(i) + (i == 0 || i == 7 ? " ler" : " lsr");
    s += " engine=" + engine;
    if (!cache.empty()) {
      s += " cache=" + cache;
    }
    s += "\n";
  }
  for (int i = 0; i + 1 < 8; ++i) {
    s += "link R" + std::to_string(i) + " R" + std::to_string(i + 1) +
         " 1G 100us\n";
  }
  s += "lsp 10.1.0.0/16 R0 R1 R2 R3 R4 R5 R6 R7\n";
  s += "flow cbr 1 R0 10.1.0.5 size=200 interval=100us start=0s stop=" +
       std::to_string(stop_s) + "\n";
  return s;
}

struct LineRun {
  core::ScenarioRunner::Report report;
  double wall_s = 0;
};

LineRun run_line(const std::string& engine, const std::string& cache,
                 double stop_s) {
  const auto t0 = std::chrono::steady_clock::now();
  auto result =
      core::ScenarioRunner::run_text(line_scenario(engine, cache, stop_s));
  LineRun run;
  run.wall_s = seconds_since(t0);
  if (std::holds_alternative<net::ScenarioError>(result)) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 std::get<net::ScenarioError>(result).message.c_str());
    std::exit(2);
  }
  run.report = std::move(std::get<core::ScenarioRunner::Report>(result));
  return run;
}

/// Books two runs must agree on for "bit-identical outcomes": per-flow
/// delivery and exact latency distribution, plus per-router counters
/// including the modelled engine cycles.
bool same_books(const core::ScenarioRunner::Report& a,
                const core::ScenarioRunner::Report& b) {
  const auto& fa = a.flows.flow(1);
  const auto& fb = b.flows.flow(1);
  if (fa.sent != fb.sent || fa.delivered != fb.delivered ||
      fa.latency.mean() != fb.latency.mean() ||
      fa.latency.percentile(0.99) != fb.latency.percentile(0.99) ||
      fa.jitter != fb.jitter) {
    return false;
  }
  if (a.routers.size() != b.routers.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    const auto& ra = a.routers[i];
    const auto& rb = b.routers[i];
    if (ra.received != rb.received || ra.forwarded != rb.forwarded ||
        ra.delivered != rb.delivered || ra.discarded != rb.discarded ||
        ra.engine_cycles != rb.engine_cycles) {
      return false;
    }
  }
  return true;
}

/// One million-sweep case: a trie base of `l1` host routes plus `l23`
/// bindings at each of levels 2 and 3, measuring install throughput
/// while programming, lookup throughput over the warm base, and the
/// slab bytes/entry the arena stats report.
struct MillionResult {
  std::size_t entries = 0;
  double installs_per_sec = 0;
  double lookups_per_sec = 0;
  double bytes_per_entry = 0;
};

MillionResult million_sweep(std::size_t l1, std::size_t l23,
                            double min_wall) {
  sw::TrieEngine engine(l1 + 2 * l23);
  engine.reserve(1, l1);
  engine.reserve(2, l23);
  engine.reserve(3, l23);

  // Bijective key generators (odd multipliers): distinct keys, no key
  // array to hold in memory next to the 10M-entry base being measured.
  const auto l1_key = [](std::size_t i) {
    return static_cast<rtl::u32>(i) * 2654435761u;
  };
  const auto l23_key = [](std::size_t i) {
    return (static_cast<rtl::u32>(i) * 40503u) & 0xFFFFFu;
  };

  MillionResult r;
  r.entries = l1 + 2 * l23;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < l1; ++i) {
    engine.write_pair(1, mpls::LabelPair{l1_key(i),
                                         static_cast<rtl::u32>(i & 0xFFFFF),
                                         mpls::LabelOp::kPush});
  }
  for (std::size_t i = 0; i < l23; ++i) {
    engine.write_pair(2, mpls::LabelPair{l23_key(i),
                                         static_cast<rtl::u32>(i & 0xFFFFF),
                                         mpls::LabelOp::kSwap});
    engine.write_pair(3, mpls::LabelPair{l23_key(i),
                                         static_cast<rtl::u32>(i & 0xFFFFF),
                                         mpls::LabelOp::kPop});
  }
  r.installs_per_sec = static_cast<double>(r.entries) / seconds_since(t0);
  const auto stats = engine.memory_stats();
  r.bytes_per_entry = stats.bytes_per_entry();

  // Lookup throughput: uniform over the whole base, levels drawn
  // proportionally to their share of it.
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  std::uint64_t sink = 0;
  std::uint64_t done = 0;
  const auto t1 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    for (int i = 0; i < 2000; ++i) {
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      const auto draw = (x * 0x2545F4914F6CDD1DULL) >> 33;
      const std::size_t idx = draw % r.entries;
      std::optional<mpls::LabelPair> hit;
      if (idx < l1) {
        hit = engine.lookup(1, l1_key(idx));
      } else {
        const unsigned level = idx < l1 + l23 ? 2u : 3u;
        hit = engine.lookup(level, l23_key(idx % l23));
      }
      sink += hit ? hit->new_label : 0;
    }
    done += 2000;
    elapsed = seconds_since(t1);
  } while (elapsed < min_wall);
  r.lookups_per_sec = static_cast<double>(done) / elapsed;
  if (sink == 0x51ab) {
    std::printf("~");  // never: defeats dead-code elimination
  }
  return r;
}

std::string human(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  std::printf("== vectorized lookup + flow cache (X6)%s ==\n",
              quick ? " [quick]" : "");
  std::printf("simd kernel: %s\n\n",
              std::string(sw::SimdEngine::kernel()).c_str());

  bench::BenchJson json("lookup");
  json.set("quick", quick);
  json.set("simd_kernel", std::string(sw::SimdEngine::kernel()));

  // Part 1: occupancy sweep.
  const double min_wall = quick ? 0.02 : 0.2;
  const std::vector<std::size_t> occupancies{64, 256, 1024};
  const std::vector<std::string> engines{"linear", "simd", "hash", "cam",
                                         "trie"};
  bench::Table sweep({"entries/level", "linear up/s", "simd up/s",
                      "hash up/s", "cam up/s", "trie up/s", "trie B/entry",
                      "simd vs linear"});
  double linear_1024 = 0;
  double simd_1024 = 0;
  for (const auto occ : occupancies) {
    std::vector<double> rates;
    double trie_bpe = 0;
    for (const auto& kind : engines) {
      auto engine = make_engine(kind);
      const double r = updates_per_sec(*engine, occ, min_wall);
      rates.push_back(r);
      json.set("sweep." + std::to_string(occ) + "." + kind, r);
      if (kind == "trie") {
        // Per-entry slab memory at this occupancy, from the arena
        // stats (updates_per_sec left the level programmed).
        trie_bpe = static_cast<sw::TrieEngine&>(*engine)
                       .memory_stats()
                       .bytes_per_entry();
        json.set("sweep." + std::to_string(occ) + ".trie_bytes_per_entry",
                 trie_bpe);
      }
    }
    if (occ == 1024) {
      linear_1024 = rates[0];
      simd_1024 = rates[1];
    }
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx", rates[1] / rates[0]);
    char bpe[32];
    std::snprintf(bpe, sizeof bpe, "%.1f", trie_bpe);
    sweep.add_row({std::to_string(occ), human(rates[0]), human(rates[1]),
                   human(rates[2]), human(rates[3]), human(rates[4]), bpe,
                   ratio});
  }
  sweep.print();
  json.set("gate.simd_vs_linear_1024", simd_1024 / linear_1024);

  // Part 3: million-entry FIB sweep (quick: 1M; full: 1M + 10M).
  std::printf("\n");
  bench::Table million({"trie FIB", "entries", "installs/s", "lookups/s",
                        "bytes/entry"});
  std::vector<std::pair<std::size_t, std::size_t>> cases{{600000, 200000}};
  if (!quick) {
    cases.emplace_back(9200000, 400000);  // 10M: scale lives in level 1
  }
  double bpe_1m = 0;
  for (const auto& [l1, l23] : cases) {
    const auto r = million_sweep(l1, l23, min_wall);
    if (r.entries == 1000000) {
      bpe_1m = r.bytes_per_entry;
    }
    char bpe[32];
    std::snprintf(bpe, sizeof bpe, "%.1f", r.bytes_per_entry);
    million.add_row({human(static_cast<double>(l1)) + " l1 + 2x" +
                         human(static_cast<double>(l23)),
                     human(static_cast<double>(r.entries)),
                     human(r.installs_per_sec), human(r.lookups_per_sec),
                     bpe});
    const std::string prefix = "million." + std::to_string(r.entries);
    json.set(prefix + ".installs_per_sec", r.installs_per_sec);
    json.set(prefix + ".lookups_per_sec", r.lookups_per_sec);
    json.set(prefix + ".bytes_per_entry", r.bytes_per_entry);
  }
  million.print();

  // Part 2: flow cache on the 8-node line.
  const double stop_s = quick ? 0.1 : 0.5;
  const auto uncached = run_line("simd", "off", stop_s);
  const auto cached = run_line("simd", "1024", stop_s);
  const auto golden = run_line("linear", "off", stop_s);

  const auto& cache_rows = cached.report.routers;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t invalidations = 0;
  for (const auto& r : cache_rows) {
    hits += r.cache.hits;
    misses += r.cache.misses;
    invalidations += r.cache.invalidations;
  }
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);

  std::printf("\n");
  bench::Table line({"8-node line (simd)", "wall s", "delivered",
                     "engine cycles R1", "cache hit rate"});
  auto row = [&](const char* label, const LineRun& run, bool with_cache) {
    char rate[32] = "-";
    if (with_cache) {
      std::snprintf(rate, sizeof rate, "%.1f%%", hit_rate * 100.0);
    }
    line.add_row({label, std::to_string(run.wall_s),
                  std::to_string(run.report.flows.flow(1).delivered),
                  std::to_string(run.report.routers.at(1).engine_cycles),
                  rate});
  };
  row("cache=off", uncached, false);
  row("cache=1024", cached, true);
  row("linear golden", golden, false);
  line.print();

  json.set("cache.hit_rate", hit_rate);
  json.set("cache.hits", hits);
  json.set("cache.misses", misses);
  json.set("cache.invalidations", invalidations);
  json.set("cache.wall_s_off", uncached.wall_s);
  json.set("cache.wall_s_on", cached.wall_s);
  json.set("cache.delivered",
           cached.report.flows.flow(1).delivered);
  json.write();

  bench::Checks checks;
  checks.expect_true("cache=1024 books identical to cache=off",
                     same_books(cached.report, uncached.report));
  checks.expect_true("simd books identical to linear golden",
                     same_books(uncached.report, golden.report));
  checks.expect_true("steady-state hit rate >= 90%", hit_rate >= 0.90);
#ifdef NDEBUG
  char gate[64];
  std::snprintf(gate, sizeof gate, "simd >= 2x linear at 1024 (%.2fx)",
                simd_1024 / linear_1024);
  checks.expect_true(gate, simd_1024 >= 2.0 * linear_1024);
  char mem_gate[64];
  std::snprintf(mem_gate, sizeof mem_gate,
                "trie <= 64 bytes/entry at 1M (%.1f)", bpe_1m);
  checks.expect_true(mem_gate, bpe_1m > 0 && bpe_1m <= 64.0);
#else
  std::printf("  [SKIP] 2x + bytes/entry gates (debug build; run Release "
              "to enforce)\n");
#endif
  return checks.exit_code();
}
