// Reproduces Figure 16: simulation of a packet discard.
//
// Paper narrative: the level-2 table holds labels 1..10; label_lookup is
// set to 27, which is not stored.  "When the lookup signal is made high,
// the r_index signal iterates to process all label pairs stored at that
// level.  After processing the last stored pair, no match has been found
// so the lookup_done and packetdiscard signals are sent high ...
// Signals label_out and operation_out remain unchanged."
#include "figure_common.hpp"

using namespace empls;

int main() {
  std::printf("== Figure 16: lookup miss -> packet discard ==\n");
  bench::Checks checks;
  bench::FigureRig rig(/*level=*/2);

  rig.write_ten_pairs(2, /*first_index=*/1);

  // Prime label_out / operation_out with a successful lookup so we can
  // verify the miss leaves them unchanged.
  const auto primed = rig.modifier.search(2, 7);
  checks.expect_true("priming lookup hits", primed.found);

  const std::size_t lookup_start = rig.trace.num_samples();
  const auto result = rig.modifier.search(2, 27);
  rig.modifier.sim().run(3);

  checks.expect_true("label 27 is not found", !result.found);
  checks.expect_eq("miss scans all ten entries (3n+5)", 35,
                   static_cast<long long>(result.cycles));

  const long done_at = rig.trace.find_first("lookup_done", 1, lookup_start);
  const long discard_at =
      rig.trace.find_first("packetdiscard", 1, lookup_start);
  checks.expect_true("lookup_done goes high", done_at >= 0);
  checks.expect_true("packetdiscard goes high", discard_at >= 0);
  checks.expect_true("they rise together", done_at == discard_at);
  if (done_at >= 0) {
    const auto s = static_cast<std::size_t>(done_at);
    checks.expect_eq(
        "r_index processed the last stored pair", 9,
        static_cast<long long>(rig.trace.value("r_index", s)));
    checks.expect_eq(
        "label_out remains unchanged", primed.label,
        static_cast<long long>(rig.trace.value("label_out", s)));
    checks.expect_eq(
        "operation_out remains unchanged", primed.operation,
        static_cast<long long>(rig.trace.value("operation_out", s)));
  }

  rig.emit("fig16.vcd", lookup_start > 3 ? lookup_start - 3 : 0,
           rig.trace.num_samples());
  return checks.exit_code();
}
