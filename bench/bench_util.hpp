// Shared helpers for the reproduction benches: aligned table printing,
// pass/fail accounting against the paper's reported values, and the
// BENCH_<name>.json artifact writer the CI smoke job uploads.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace empls::bench {

/// Simple fixed-width table writer for paper-style rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (const auto w : widths) {
      std::printf("%s|", std::string(w + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

  /// Also emit the table as CSV (plot-ready artifact next to the
  /// human-readable print).  Cells containing commas are quoted.
  bool write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      return false;
    }
    auto emit = [&out](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) {
          out << ',';
        }
        if (row[c].find(',') != std::string::npos) {
          out << '"' << row[c] << '"';
        } else {
          out << row[c];
        }
      }
      out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) {
      emit(row);
    }
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// CI artifact writer: collects (dotted key, value) pairs and emits
/// them as nested JSON to BENCH_<name>.json.  "line8.legacy.pps" lands
/// under {"line8": {"legacy": {"pps": ...}}}; keys sharing a prefix
/// must be added consecutively (the writer streams, it does not sort).
/// Every artifact is stamped with the build config and `git describe`
/// so CI uploads are traceable to a commit.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {
    set("build.git", git_describe());
#ifdef NDEBUG
    set("build.config", std::string("Release"));
#else
    set("build.config", std::string("Debug"));
#endif
  }

  template <typename T>
  void set(const std::string& dotted_key, T value) {
    if constexpr (std::is_same_v<T, bool>) {
      entries_.emplace_back(dotted_key, value ? "true" : "false");
    } else if constexpr (std::is_integral_v<T>) {
      entries_.emplace_back(dotted_key, std::to_string(value));
    } else if constexpr (std::is_floating_point_v<T>) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.10g", static_cast<double>(value));
      entries_.emplace_back(dotted_key, buf);
    } else {
      entries_.emplace_back(dotted_key, quote(std::string(value)));
    }
  }

  /// Write BENCH_<name>.json in the working directory and announce it.
  /// Refuses (returns false) when the collected keys would emit invalid
  /// JSON: exact duplicates, or a key reused as an object prefix.
  bool write() const {
    if (!keys_valid()) {
      std::fprintf(stderr,
                   "BENCH_%s.json: duplicate or conflicting dotted keys\n",
                   name_.c_str());
      return false;
    }
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      return false;
    }
    std::vector<std::string> open;  // object path currently open
    out << '{';
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const auto parts = split(entries_[i].first);
      std::size_t common = 0;
      while (common < open.size() && common + 1 < parts.size() &&
             open[common] == parts[common]) {
        ++common;
      }
      for (std::size_t d = open.size(); d > common; --d) {
        out << '\n' << indent(d) << '}';
      }
      open.resize(common);
      if (i > 0) {
        out << ',';
      }
      for (std::size_t d = common; d + 1 < parts.size(); ++d) {
        out << '\n' << indent(d + 1) << '"' << parts[d] << "\": {";
        open.push_back(parts[d]);
      }
      out << '\n' << indent(open.size() + 1) << '"' << parts.back()
          << "\": " << entries_[i].second;
    }
    for (std::size_t d = open.size(); d > 0; --d) {
      out << '\n' << indent(d) << '}';
    }
    out << "\n}\n";
    if (out) {
      std::printf("wrote %s\n", path.c_str());
    }
    return static_cast<bool>(out);
  }

 private:
  static std::string git_describe() {
#if defined(_WIN32)
    return "unknown";
#else
    std::string text;
    if (FILE* p = popen("git describe --always --dirty --tags 2>/dev/null",
                        "r")) {
      char buf[128];
      while (std::fgets(buf, sizeof buf, p) != nullptr) {
        text += buf;
      }
      pclose(p);
    }
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
      text.pop_back();
    }
    return text.empty() ? "unknown" : text;
#endif
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\r':
          out += "\\r";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(
                              static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  /// A duplicate key, or a key that is also an object prefix of another
  /// ("a.b" alongside "a.b.c"), would stream out as invalid JSON.
  [[nodiscard]] bool keys_valid() const {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      for (std::size_t j = i + 1; j < entries_.size(); ++j) {
        const std::string& a = entries_[i].first;
        const std::string& b = entries_[j].first;
        if (a == b) {
          return false;
        }
        const std::string& shorter = a.size() < b.size() ? a : b;
        const std::string& longer = a.size() < b.size() ? b : a;
        if (longer.size() > shorter.size() &&
            longer.compare(0, shorter.size(), shorter) == 0 &&
            longer[shorter.size()] == '.') {
          return false;
        }
      }
    }
    return true;
  }

  static std::vector<std::string> split(const std::string& key) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= key.size(); ++i) {
      if (i == key.size() || key[i] == '.') {
        parts.push_back(key.substr(start, i - start));
        start = i + 1;
      }
    }
    return parts;
  }

  static std::string indent(std::size_t depth) {
    return std::string(2 * depth, ' ');
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Check accounting: every reproduced quantity is verified against the
/// paper, and the bench exits non-zero if any diverges.
class Checks {
 public:
  void expect_eq(const std::string& what, long long paper,
                 long long measured) {
    const bool ok = paper == measured;
    std::printf("  [%s] %s: paper=%lld measured=%lld\n", ok ? "OK" : "MISMATCH",
                what.c_str(), paper, measured);
    failed_ += ok ? 0 : 1;
  }

  void expect_true(const std::string& what, bool ok) {
    std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what.c_str());
    failed_ += ok ? 0 : 1;
  }

  [[nodiscard]] int exit_code() const {
    if (failed_ > 0) {
      std::printf("\n%d check(s) FAILED\n", failed_);
      return 1;
    }
    std::printf("\nall checks passed\n");
    return 0;
  }

 private:
  int failed_ = 0;
};

}  // namespace empls::bench
