// Shared helpers for the reproduction benches: aligned table printing
// and pass/fail accounting against the paper's reported values.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace empls::bench {

/// Simple fixed-width table writer for paper-style rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string{};
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (const auto w : widths) {
      std::printf("%s|", std::string(w + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

  /// Also emit the table as CSV (plot-ready artifact next to the
  /// human-readable print).  Cells containing commas are quoted.
  bool write_csv(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      return false;
    }
    auto emit = [&out](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (c > 0) {
          out << ',';
        }
        if (row[c].find(',') != std::string::npos) {
          out << '"' << row[c] << '"';
        } else {
          out << row[c];
        }
      }
      out << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) {
      emit(row);
    }
    return static_cast<bool>(out);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Check accounting: every reproduced quantity is verified against the
/// paper, and the bench exits non-zero if any diverges.
class Checks {
 public:
  void expect_eq(const std::string& what, long long paper,
                 long long measured) {
    const bool ok = paper == measured;
    std::printf("  [%s] %s: paper=%lld measured=%lld\n", ok ? "OK" : "MISMATCH",
                what.c_str(), paper, measured);
    failed_ += ok ? 0 : 1;
  }

  void expect_true(const std::string& what, bool ok) {
    std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what.c_str());
    failed_ += ok ? 0 : 1;
  }

  [[nodiscard]] int exit_code() const {
    if (failed_ > 0) {
      std::printf("\n%d check(s) FAILED\n", failed_);
      return 1;
    }
    std::printf("\nall checks passed\n");
    return 0;
  }

 private:
  int failed_ = 0;
};

}  // namespace empls::bench
