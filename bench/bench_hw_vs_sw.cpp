// Extension experiment X1: the paper's motivating claim — "MPLS
// performance can be enhanced by executing core tasks in hardware" —
// quantified.  Compares per-update cost of:
//
//   * the modelled 50 MHz hardware (linear engine reporting Table 6
//     cycle costs, converted to time),
//   * the software baselines measured by wall clock on this host
//     (linear scan and hash map), and
//   * the cycle-accurate RTL simulation itself (simulator speed, not
//     router speed — reported for completeness).
//
// The packet alternates between two labels bound to each other at
// mid-table positions, so every update hits at a stable depth while the
// stack keeps its shape.
#include <benchmark/benchmark.h>

#include "hw/cycle_model.hpp"
#include "rtl/clock_model.hpp"
#include "sw/hash_engine.hpp"
#include "sw/hw_engine.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

/// Fill level 2 with n self-bound swap pairs, except the mid-table two
/// which are bound to each other (the benchmark ping-pongs on those).
void fill(sw::LabelEngine& engine, rtl::u32 n) {
  const rtl::u32 a = n / 2;
  const rtl::u32 b = n / 2 + 1;
  for (rtl::u32 i = 1; i <= n; ++i) {
    rtl::u32 out = i;
    if (i == a) {
      out = b;
    } else if (i == b) {
      out = a;
    }
    engine.write_pair(2, mpls::LabelPair{i, out, mpls::LabelOp::kSwap});
  }
}

mpls::Packet make_packet(rtl::u32 label) {
  mpls::Packet p;
  p.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 1);
  p.stack.push(mpls::LabelEntry{label, 3, false, 255});
  return p;
}

template <typename Engine>
void update_loop(benchmark::State& state) {
  const auto n = static_cast<rtl::u32>(state.range(0));
  Engine engine;
  fill(engine, n);
  mpls::Packet p = make_packet(n / 2);
  rtl::u64 cycles = 0;
  rtl::u64 updates = 0;
  for (auto _ : state) {
    auto outcome = engine.update(p, 2, hw::RouterType::kLsr);
    benchmark::DoNotOptimize(outcome);
    cycles += outcome.hw_cycles;
    ++updates;
    if (p.stack.empty() || (p.stack.top().ttl < 2)) {
      // TTL exhaustion resets the ping-pong packet.
      p = make_packet(n / 2);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(updates));
  if (cycles > 0) {
    const rtl::ClockModel clock;
    state.counters["modeled_hw_us_per_update"] = benchmark::Counter(
        clock.microseconds(cycles) / static_cast<double>(updates));
    state.counters["modeled_hw_updates_per_s"] = benchmark::Counter(
        static_cast<double>(updates) / clock.seconds(cycles));
  }
}

void BM_SwLinearUpdate(benchmark::State& state) {
  update_loop<sw::LinearEngine>(state);
}
void BM_SwHashUpdate(benchmark::State& state) {
  update_loop<sw::HashEngine>(state);
}
void BM_HwRtlSimulation(benchmark::State& state) {
  update_loop<sw::HwEngine>(state);
}

}  // namespace

BENCHMARK(BM_SwLinearUpdate)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_SwHashUpdate)->Arg(16)->Arg(128)->Arg(1024);
BENCHMARK(BM_HwRtlSimulation)->Arg(16)->Arg(128)->Arg(1024);

int main(int argc, char** argv) {
  std::printf(
      "== X1: hardware (modeled @50 MHz) vs software label update ==\n"
      "modeled_hw_* counters give the embedded target's speed; the ns/op\n"
      "column is this host's wall clock (software baselines) or simulator\n"
      "overhead (BM_HwRtlSimulation).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Headline comparison at mid-table hit depth for n=1024.
  const rtl::ClockModel clock;
  const rtl::u64 hw_cycles = hw::update_swap_cycles(512);
  std::printf(
      "\nheadline: modeled hardware swap at hit depth 512 = %llu cycles "
      "= %.2f us -> %.0f updates/s at 50 MHz\n",
      static_cast<unsigned long long>(hw_cycles),
      clock.microseconds(hw_cycles),
      1.0 / clock.seconds(hw_cycles));
  return 0;
}
