// Reproduces Table 6: "Processing times for different tasks" — worst-case
// clock cycles for every operation of the label stack modifier, measured
// on the cycle-accurate RTL model.
//
//   Operation                     Paper (worst case)
//   Reset                         3
//   push from the user            3
//   pop from the user             3
//   Write label pair              3
//   Search information base       3n+5
//   swap from the info base       6   (post-search tail)
#include <string>

#include "bench_util.hpp"
#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"

using namespace empls;

int main() {
  std::printf("== Table 6: processing times for different tasks ==\n\n");
  bench::Checks checks;
  bench::Table table({"Operation", "Paper (cycles)", "Measured (cycles)"});

  hw::LabelStackModifier m;

  // Reset.
  const auto reset_cycles = m.do_reset();
  table.add_row({"Reset", "3", std::to_string(reset_cycles)});
  checks.expect_eq("reset", 3, static_cast<long long>(reset_cycles));

  // User push / pop.
  const auto push_cycles = m.user_push(mpls::LabelEntry{42, 0, false, 64});
  table.add_row({"push from the user", "3", std::to_string(push_cycles)});
  checks.expect_eq("user push", 3, static_cast<long long>(push_cycles));

  const auto pop_cycles = m.user_pop();
  table.add_row({"pop from the user", "3", std::to_string(pop_cycles)});
  checks.expect_eq("user pop", 3, static_cast<long long>(pop_cycles));

  // Write label pair.
  const auto write_cycles =
      m.write_pair(1, mpls::LabelPair{600, 500, mpls::LabelOp::kSwap});
  table.add_row({"Write label pair", "3", std::to_string(write_cycles)});
  checks.expect_eq("write label pair", 3,
                   static_cast<long long>(write_cycles));

  // Search: fill a level with n entries, search for the last (worst
  // case); verify 3n+5 across a sweep.
  bool search_formula_holds = true;
  for (rtl::u32 n : {1u, 4u, 16u, 64u, 256u, 1024u}) {
    hw::LabelStackModifier fresh;
    for (rtl::u32 i = 0; i < n; ++i) {
      fresh.write_pair(2, mpls::LabelPair{i + 1, 5000 + i,
                                          mpls::LabelOp::kSwap});
    }
    const auto r = fresh.search(2, n);  // worst position: last entry
    search_formula_holds =
        search_formula_holds && r.found && r.cycles == 3ull * n + 5;
    if (n == 1024) {
      table.add_row({"Search information base (n=1024)", "3n+5 = 3077",
                     std::to_string(r.cycles)});
      checks.expect_eq("search n=1024", 3077,
                       static_cast<long long>(r.cycles));
    }
  }
  checks.expect_true("search cost is 3n+5 for n in {1,4,16,64,256,1024}",
                     search_formula_holds);

  // Swap from the information base: measure a full update whose search
  // examines exactly one entry and subtract the search portion.
  {
    hw::LabelStackModifier fresh;
    fresh.user_push(mpls::LabelEntry{40, 0, false, 64});
    fresh.write_pair(2, mpls::LabelPair{40, 77, mpls::LabelOp::kSwap});
    const auto r = fresh.update(2, hw::RouterType::kLsr, 0);
    const auto tail = r.cycles - hw::search_cycles(1);
    table.add_row({"swap from the information base", "6",
                   std::to_string(tail)});
    checks.expect_eq("swap tail", 6, static_cast<long long>(tail));
  }

  table.print();
  table.write_csv("table6.csv");
  return checks.exit_code();
}
