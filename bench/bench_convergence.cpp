// Extension experiment X10: link-state convergence vs network size.
//
// The routing functionality the paper leaves to "protocols like OSPF"
// has a cost of its own: after a topology change, routers disagree
// until LSA flooding completes.  This bench builds ring+chord networks
// of increasing size, measures (a) bootstrap convergence time, (b)
// re-convergence time after a link failure, and (c) the LSA flood
// volume — the scaling behaviour that decides how big a single IGP
// area can get.
//
// Shape: convergence time grows with network diameter (not node
// count); flood volume grows with edges x nodes.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "net/link_state.hpp"
#include "net/node.hpp"

using namespace empls;

namespace {

class DummyNode : public net::Node {
 public:
  explicit DummyNode(std::string name) : Node(std::move(name)) {}
  void receive(net::PacketHandle, mpls::InterfaceId) override {}
};

struct Measurement {
  double bootstrap_ms = 0;
  double reconverge_ms = 0;
  std::uint64_t floods = 0;
  bool converged = false;
  bool rerouted = false;
};

Measurement measure(unsigned n) {
  net::Network net;
  net::LinkStateRouting lsr(net, /*flood_hop_delay=*/1e-3);
  std::vector<net::NodeId> nodes;
  for (unsigned i = 0; i < n; ++i) {
    std::string name(1, 'N');
    name += std::to_string(i);
    nodes.push_back(net.add_node(std::make_unique<DummyNode>(name)));
  }
  // Ring + every-4th chord: diameter ~n/4.
  for (unsigned i = 0; i < n; ++i) {
    net.connect(nodes[i], nodes[(i + 1) % n], 10e6, 1e-3);
  }
  for (unsigned i = 0; i < n; i += 4) {
    net.connect(nodes[i], nodes[(i + n / 2) % n], 10e6, 1e-3);
  }
  lsr.add_all_routers();

  Measurement m;
  lsr.bootstrap();
  net.run();
  m.bootstrap_ms = lsr.last_change_at() * 1e3;
  m.converged = lsr.converged();

  // Fail a ring link and measure how long the news takes to settle.
  const double fail_at = net.now();
  net.set_connection_up(nodes[0], nodes[1], false);
  lsr.notify_link_change(nodes[0], nodes[1]);
  net.run();
  m.reconverge_ms = (lsr.last_change_at() - fail_at) * 1e3;
  m.converged = m.converged && lsr.converged();
  m.floods = lsr.stats().floods_sent;
  const auto path = lsr.path_from(nodes[0], nodes[1]);
  m.rerouted = path.has_value() && path->size() > 2;
  return m;
}

}  // namespace

int main() {
  std::printf("== X10: link-state convergence vs network size ==\n\n");
  bench::Checks checks;
  bench::Table table({"routers", "bootstrap (ms)", "re-converge after "
                      "failure (ms)", "LSA copies flooded"});
  Measurement m8;
  Measurement m32;
  bool all_ok = true;
  for (const unsigned n : {8u, 16u, 32u, 64u}) {
    const auto m = measure(n);
    all_ok = all_ok && m.converged && m.rerouted;
    char boot[32];
    char re[32];
    std::snprintf(boot, sizeof boot, "%.1f", m.bootstrap_ms);
    std::snprintf(re, sizeof re, "%.1f", m.reconverge_ms);
    table.add_row({std::to_string(n), boot, re, std::to_string(m.floods)});
    if (n == 8) {
      m8 = m;
    }
    if (n == 32) {
      m32 = m;
    }
  }
  table.print();
  table.write_csv("convergence.csv");

  checks.expect_true("all sizes converged and rerouted", all_ok);
  checks.expect_true("re-convergence grows with diameter",
                     m32.reconverge_ms > m8.reconverge_ms);
  checks.expect_true("flood volume grows superlinearly with size",
                     m32.floods > 4 * m8.floods);
  std::printf(
      "\nshape: convergence tracks network diameter (flood hops), not node "
      "count; flood volume is the scaling limit — the reason real IGPs "
      "split into areas.\n");
  return checks.exit_code();
}
