// Overload survival: saturation sweep, adversarial containment, and a
// sustained conservation run.
//
// Three parts:
//
//   1. Load sweep — open-loop Poisson arrivals walked from light load
//      past the saturation knee of a two-router LSP; each point reports
//      goodput and delivery-latency p99/p999 from the flow ledger's HDR
//      histogram.  The knee is the highest offered load that still
//      delivers >= 95% of what was sent.
//   2. Containment campaigns — the four survey attacks (spoof,
//      ttl_flood, reserved, exhaust) against a guarded router carrying
//      a victim load.  Gates: victim goodput stays within 5% of the
//      attack-free baseline, victim p999 stays bounded, and every
//      attack packet is attributed — delivered + accounted drops equals
//      injected, with spoof/reserved attributed to their specific new
//      drop reasons.
//   3. Sustained run — >= 10M open-loop packets (--quick: 1M) driven at
//      ~7x the bottleneck capacity: exact flow conservation over every
//      flow, and zero PacketPool growth after warm-up (the in-flight
//      population is bounded by the queues, not the offered load).
//
// All gates are on simulated results, so they hold in Debug and Release
// alike; results land in BENCH_overload.json for CI artifacts.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "core/scenario_runner.hpp"
#include "net/fault_injector.hpp"
#include "net/ldp.hpp"
#include "net/loadgen.hpp"
#include "obs/drop_reason.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

std::string human(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fms", seconds * 1e3);
  return buf;
}

core::ScenarioRunner::Report run_text(const std::string& text) {
  auto result = core::ScenarioRunner::run_text(text);
  if (auto* err = std::get_if<net::ScenarioError>(&result)) {
    std::fprintf(stderr, "scenario failed: %s\n", err->message.c_str());
    std::exit(1);
  }
  return std::get<core::ScenarioRunner::Report>(std::move(result));
}

// ---------------------------------------------------------------------
// Part 1: saturation sweep.  100 Mb/s bottleneck, 184 B on the wire:
// the line saturates near 68 kpps.

struct SweepPoint {
  double offered_pps = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double goodput_pps = 0;
  double p99_s = 0;
  double p999_s = 0;
  bool conserved = false;
};

SweepPoint sweep_point(double offered_pps, double sim_s) {
  char text[512];
  std::snprintf(text, sizeof text,
                "router LER ler\n"
                "router EGR ler\n"
                "link LER EGR 100M 1ms\n"
                "lsp 10.1.0.0/16 LER EGR\n"
                "loadgen poisson LER 10.1.0.5 rate=%.0f flows=4096 "
                "seed=17 stop=%.3f\nrun %.3f\n",
                offered_pps, sim_s, sim_s + 0.2);
  const auto report = run_text(text);
  SweepPoint p;
  p.offered_pps = offered_pps;
  p.sent = report.loadgen->sent;
  p.delivered = report.loadgen->delivered;
  p.goodput_pps = static_cast<double>(p.delivered) / sim_s;
  p.p99_s = report.loadgen->p99_s;
  p.p999_s = report.loadgen->p999_s;
  p.conserved = report.loadgen->conserved;
  return p;
}

// ---------------------------------------------------------------------
// Part 2: containment campaigns.

struct CampaignResult {
  std::string kind;
  std::uint64_t injected = 0;
  std::uint64_t attack_delivered = 0;
  std::uint64_t attack_drops = 0;
  std::uint64_t victim_delivered = 0;
  double victim_p999_s = 0;
  net::GuardStats guard;
  obs::DropCounts drops{};
  bool victim_conserved = false;
};

CampaignResult campaign(const char* kind, double sim_s) {
  std::string text =
      "router LER ler\n"
      "router EGR ler\n"
      "link LER EGR 100M 1ms\n"
      "lsp 10.1.0.0/16 LER EGR\n"
      "guard * ttl=200 reprogram=100\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "loadgen poisson LER 10.1.0.5 rate=20k flows=4096 seed=5 "
                "stop=%.3f\n",
                sim_s);
  text += line;
  if (kind != nullptr) {
    std::snprintf(line, sizeof line,
                  "attack %s 0.2s LER rate=20k for=%.3f seed=9 "
                  "dst=10.1.0.9\n",
                  kind, sim_s * 0.6);
    text += line;
  }
  std::snprintf(line, sizeof line, "run %.3f\n", sim_s + 0.2);
  text += line;

  const auto report = run_text(text);
  CampaignResult r;
  r.kind = kind != nullptr ? kind : "baseline";
  if (!report.attacks.empty()) {
    r.injected = report.attacks[0].injected;
    r.attack_delivered = report.attacks[0].delivered;
    r.attack_drops = report.attacks[0].drops;
  }
  r.victim_delivered = report.loadgen->delivered;
  r.victim_p999_s = report.loadgen->p999_s;
  r.guard = report.guard;
  r.drops = report.drops;
  r.victim_conserved = report.loadgen->conserved;
  return r;
}

// ---------------------------------------------------------------------
// Part 3: sustained overload with exact books and a bounded pool.

struct SustainedResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
  bool conserved = false;
  std::size_t pool_high_water_warm = 0;
  std::size_t pool_high_water_end = 0;
};

SustainedResult sustained(double rate_pps, double sim_s) {
  net::QosConfig qos;
  qos.queue_capacity = 64;
  net::Network net(qos);
  net.events().set_scheduler(net::SchedulerBackend::kCalendar);
  net::ControlPlane cp(net);
  std::vector<net::NodeId> ids;
  for (const char* name : {"LER", "EGR"}) {
    core::RouterConfig cfg;
    cfg.type = hw::RouterType::kLer;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    ids.push_back(net.add_node(std::move(r)));
    cp.register_router(ids.back(), &raw->routing());
  }
  net.connect(ids[0], ids[1], 100e6, 1e-3);
  cp.establish_lsp(ids, *mpls::Prefix::parse("10.1.0.0/16"));

  net::FlowLedger ledger;
  net::DropAccountant drops(net);
  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    ledger.on_delivered(p.flow_id, net.now() - p.created_at);
  });

  net::LoadGenConfig cfg;
  cfg.ingress = ids[0];
  cfg.dst = *mpls::Ipv4Address::parse("10.1.0.5");
  cfg.rate_pps = rate_pps;
  cfg.concurrent_flows = 1 << 16;  // flat arrays, not 65k heap objects
  cfg.seed = 23;
  cfg.stop = sim_s;
  net::OpenLoopGenerator gen(net, cfg, &ledger);
  gen.start();

  SustainedResult r;
  // The queues fill within milliseconds at 7x overload; one tenth of
  // the run is a generous warm-up.  Past it the in-flight population —
  // and therefore the pool — must not grow at all.
  net.events().schedule_at(sim_s * 0.1, [&] {
    r.pool_high_water_warm = net.pool().stats().high_water;
  });
  net.run();

  r.sent = ledger.sent_total();
  r.delivered = ledger.delivered_total();
  r.drops = drops.drops_in_range(net::kLoadGenFlowBase,
                                 net::kAttackFlowBase);
  r.conserved = ledger.conserved(drops);
  r.pool_high_water_end = net.pool().stats().high_water;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  std::printf("== overload survival%s ==\n\n", quick ? " [quick]" : "");

  bench::BenchJson json("overload");
  json.set("quick", quick);
  bench::Checks checks;

  // Part 1: walk the offered load to the knee.
  const double sweep_s = quick ? 0.3 : 1.0;
  const double rates[] = {10e3, 25e3, 40e3, 55e3, 62e3, 68e3, 80e3, 120e3};
  bench::Table sweep({"offered pps", "sent", "goodput pps", "ratio", "p99",
                      "p999"});
  double knee_pps = 0;
  double knee_p999 = 0;
  bool sweep_conserved = true;
  for (std::size_t i = 0; i < sizeof rates / sizeof rates[0]; ++i) {
    const auto p = sweep_point(rates[i], sweep_s);
    const double ratio =
        static_cast<double>(p.delivered) / static_cast<double>(p.sent);
    if (ratio >= 0.95) {
      knee_pps = p.offered_pps;
      knee_p999 = p.p999_s;
    }
    sweep_conserved = sweep_conserved && p.conserved;
    char rbuf[16];
    std::snprintf(rbuf, sizeof rbuf, "%.3f", ratio);
    sweep.add_row({human(p.offered_pps), std::to_string(p.sent),
                   human(p.goodput_pps), rbuf, ms(p.p99_s), ms(p.p999_s)});
    const std::string key = "sweep." + std::to_string(i);
    json.set(key + ".offered_pps", p.offered_pps);
    json.set(key + ".goodput_pps", p.goodput_pps);
    json.set(key + ".p99_s", p.p99_s);
    json.set(key + ".p999_s", p.p999_s);
  }
  sweep.print();
  std::printf("\nsaturation knee: %s pps (p999 %s)\n\n",
              human(knee_pps).c_str(), ms(knee_p999).c_str());
  json.set("knee_pps", knee_pps);
  json.set("knee_p999_s", knee_p999);
  checks.expect_true("sweep conserves every flow at every point",
                     sweep_conserved);
  checks.expect_true("knee sits above half the nominal link capacity",
                     knee_pps >= 34e3);
  checks.expect_true("p999 at the knee is bounded (< 50ms)",
                     knee_p999 > 0 && knee_p999 < 50e-3);

  // Part 2: containment campaigns against the guarded router.
  const double camp_s = quick ? 0.5 : 1.0;
  const auto baseline = campaign(nullptr, camp_s);
  bench::Table camp({"campaign", "injected", "atk delivered", "atk drops",
                     "victim goodput", "victim p999"});
  camp.add_row({"baseline", "-", "-", "-",
                std::to_string(baseline.victim_delivered),
                ms(baseline.victim_p999_s)});
  json.set("campaign.baseline.victim_delivered", baseline.victim_delivered);
  json.set("campaign.baseline.victim_p999_s", baseline.victim_p999_s);
  std::vector<CampaignResult> results;
  for (const char* kind : {"spoof", "ttl_flood", "reserved", "exhaust"}) {
    results.push_back(campaign(kind, camp_s));
    const auto& r = results.back();
    camp.add_row({r.kind, std::to_string(r.injected),
                  std::to_string(r.attack_delivered),
                  std::to_string(r.attack_drops),
                  std::to_string(r.victim_delivered),
                  ms(r.victim_p999_s)});
    const std::string key = "campaign." + r.kind;
    json.set(key + ".injected", r.injected);
    json.set(key + ".attack_delivered", r.attack_delivered);
    json.set(key + ".attack_drops", r.attack_drops);
    json.set(key + ".victim_delivered", r.victim_delivered);
    json.set(key + ".victim_p999_s", r.victim_p999_s);
  }
  camp.print();
  std::printf("\n");
  for (const auto& r : results) {
    const std::string tag = std::string(" [") + r.kind + "]";
    checks.expect_true("attack books balance exactly" + tag,
                       r.attack_delivered + r.attack_drops == r.injected &&
                           r.injected > 0);
    checks.expect_true("victim conserves every flow" + tag,
                       r.victim_conserved);
    checks.expect_true(
        "victim goodput >= 95% of the attack-free baseline" + tag,
        r.victim_delivered * 100 >= baseline.victim_delivered * 95);
    checks.expect_true("victim p999 stays bounded (< 50ms)" + tag,
                       r.victim_p999_s < 50e-3);
  }

  // Attribution to the specific new reasons, not a catch-all.
  const auto& spoof = results[0];
  const auto& ttl = results[1];
  const auto& reserved = results[2];
  const auto& exhaust = results[3];
  checks.expect_true(
      "every spoof packet attributed to spoofed-label",
      spoof.drops[static_cast<std::size_t>(
          obs::DropReason::kSpoofedLabel)] == spoof.injected &&
          spoof.attack_delivered == 0);
  checks.expect_true(
      "every reserved packet attributed to reserved-label",
      reserved.drops[static_cast<std::size_t>(
          obs::DropReason::kReservedLabel)] == reserved.injected &&
          reserved.attack_delivered == 0);
  checks.expect_true("ttl flood is clipped by the expiry budget",
                     ttl.guard.ttl_limited > 0 &&
                         ttl.drops[static_cast<std::size_t>(
                             obs::DropReason::kTtlRateLimited)] > 0);
  checks.expect_true("exhaust installs are admission-controlled",
                     exhaust.guard.reprogram_refusals > 0 &&
                         exhaust.drops[static_cast<std::size_t>(
                             obs::DropReason::kReprogramRateLimited)] > 0);

  // Part 3: sustained >= 10M-packet overload run (--quick: 1M).
  const double sus_s = quick ? 2.0 : 20.0;
  const auto sus = sustained(500e3, sus_s);
  std::printf("sustained: sent=%llu delivered=%llu drops=%llu "
              "pool_hw warm=%zu end=%zu\n\n",
              static_cast<unsigned long long>(sus.sent),
              static_cast<unsigned long long>(sus.delivered),
              static_cast<unsigned long long>(sus.drops),
              sus.pool_high_water_warm, sus.pool_high_water_end);
  json.set("sustained.sent", sus.sent);
  json.set("sustained.delivered", sus.delivered);
  json.set("sustained.drops", sus.drops);
  json.set("sustained.pool_high_water", sus.pool_high_water_end);
  checks.expect_true(quick ? "sustained run sends >= 1M packets"
                           : "sustained run sends >= 10M packets",
                     sus.sent >= (quick ? 1'000'000u : 10'000'000u));
  checks.expect_true("sustained books balance exactly: sent = "
                     "delivered + drops",
                     sus.sent == sus.delivered + sus.drops);
  checks.expect_true("sustained conservation holds per flow",
                     sus.conserved);
  checks.expect_true("zero pool growth after warm-up",
                     sus.pool_high_water_end == sus.pool_high_water_warm &&
                         sus.pool_high_water_warm > 0);

  json.write();
  std::printf("\n");
  return checks.exit_code();
}
