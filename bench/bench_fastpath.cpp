// Extension experiment X5: the simulator's own fast path.
//
// The zero-allocation rework has two halves, measured separately and
// then together:
//
//   1. Event scheduling (events/sec): a self-rescheduling timer-wheel
//      workload on (a) the seed's structure — a binary heap of
//      std::function events — and (b/c) the InlineEvent queue under the
//      heap and calendar backends.
//   2. End-to-end forwarding (packets/sec): an 8-node line of routers
//      under CBR load, run with the legacy per-hop deep-copy path
//      (pooling off) versus the pooled handle path plus the calendar
//      scheduler.  Wire validation is off in both modes so the
//      comparison isolates the transport, not serialisation checks.
//
//   3. Multi-core scaling (events/sec): 8 disconnected 8-node lines
//      partitioned into 1/2/4/8 free-running event domains
//      (net/domain.hpp) — the embarrassingly-parallel shape where the
//      per-domain queues and pools should scale with cores.
//
// The gates (Release builds only): the pooled fast path must deliver at
// least 2x the legacy packets/sec on the line topology, and 8 domains
// must run at least 4x the events/sec of the unpartitioned run (skipped
// when the host has fewer than 8 hardware threads).  Results are also
// written to BENCH_fastpath.json for CI artifacts; `--quick` runs a
// smaller workload for the CI smoke job.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "net/domain.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------
// Part 1: event scheduling microbenchmark.

/// The seed's event queue, reconstructed for the baseline measurement:
/// std::function callbacks (heap-allocating for non-trivial captures,
/// copy-out on pop) in a std::priority_queue binary heap.
class SeedEventQueue {
 public:
  template <typename F>
  void schedule_in(double delay, F&& fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::forward<F>(fn)});
  }
  [[nodiscard]] double now() const { return now_; }
  std::uint64_t run() {
    std::uint64_t executed = 0;
    while (!queue_.empty()) {
      Event ev = queue_.top();  // std::priority_queue: copy, then pop
      queue_.pop();
      now_ = ev.time;
      ev.fn();
      ++executed;
    }
    return executed;
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// One self-rescheduling timer.  32 bytes of captured state — a couple
/// of pointers plus bookkeeping, the typical simulator event — which
/// overflows std::function's 16-byte inline buffer (one heap allocation
/// per scheduled event, as in the seed) but sits comfortably inside
/// InlineEvent's 64.
template <typename Queue>
struct Tick {
  Queue* q;
  std::uint64_t* remaining;
  double period;
  std::uint64_t fired = 0;
  void operator()() {
    if (*remaining == 0) {
      return;
    }
    --*remaining;
    ++fired;
    q->schedule_in(period, *this);
  }
};

/// Timer-wheel workload: `timers` concurrent self-rescheduling timers
/// with staggered periods, until `total` events have run.  This is the
/// simulator's steady-state shape — many pending events, clustered
/// times, every callback scheduling a fresh closure.
template <typename Queue>
double events_per_sec(Queue& q, std::uint64_t total, unsigned timers) {
  std::uint64_t remaining = total;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < timers; ++i) {
    Tick<Queue> tick{&q, &remaining,
                     1e-6 * (1.0 + static_cast<double>(i % 7))};
    q.schedule_in(1e-7 * i, tick);
  }
  q.run();
  return static_cast<double>(total) / seconds_since(t0);
}

double bench_seed_events(std::uint64_t total, unsigned timers) {
  SeedEventQueue q;
  return events_per_sec(q, total, timers);
}

double bench_inline_events(net::SchedulerBackend backend,
                           std::uint64_t total, unsigned timers) {
  net::EventQueue q;
  q.set_scheduler(backend);
  return events_per_sec(q, total, timers);
}

// ---------------------------------------------------------------------
// Part 2: end-to-end forwarding on the 8-node line.

struct FastpathResult {
  double wall_s = 0;
  double packets_per_sec = 0;  // delivered end-to-end per wall second
  double hops_per_sec = 0;     // router forwardings per wall second
  double events_per_sec = 0;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
  std::size_t pool_high_water = 0;
  std::uint64_t heap_fallback_events = 0;
};

FastpathResult run_line(bool legacy, net::SchedulerBackend backend,
                        double sim_seconds) {
  constexpr int kNodes = 8;
  net::QosConfig qos;
  qos.queue_capacity = 256;
  net::Network net(qos);
  net.events().set_scheduler(backend);
  net::ControlPlane cp(net);

  std::vector<net::NodeId> ids;
  for (int i = 0; i < kNodes; ++i) {
    core::RouterConfig cfg;
    cfg.type = (i == 0 || i == kNodes - 1) ? hw::RouterType::kLer
                                           : hw::RouterType::kLsr;
    // Per-hop serialize/parse round trips allocate; both modes disable
    // them so the comparison isolates the packet transport.
    cfg.validate_wire = false;
    std::string name = "R";
    name += std::to_string(i);
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    ids.push_back(net.add_node(std::move(r)));
    cp.register_router(ids.back(), &raw->routing());
  }
  for (int i = 0; i + 1 < kNodes; ++i) {
    net.connect(ids[i], ids[i + 1], 1e9, 100e-6);
  }
  net.set_legacy_fastpath(legacy);

  cp.establish_lsp(ids, *mpls::Prefix::parse("10.1.0.0/16"));

  const auto dst = *mpls::Ipv4Address::parse("10.1.0.9");
  std::vector<std::unique_ptr<net::CbrSource>> sources;
  for (std::uint32_t flow = 1; flow <= 4; ++flow) {
    net::FlowSpec spec{flow, ids.front(), {}, dst,
                       static_cast<std::uint8_t>(flow), 256,
                       0.0,  sim_seconds};
    sources.push_back(std::make_unique<net::CbrSource>(
        net, spec, nullptr, /*interval=*/100e-6));
    sources.back()->start();
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.run();
  FastpathResult r;
  r.wall_s = seconds_since(t0);
  r.delivered = net.delivered_count();
  r.events = net.events().stats().executed;
  std::uint64_t hops = 0;
  for (const auto id : ids) {
    hops += net.node_as<core::EmbeddedRouter>(id).stats().forwarded;
  }
  r.packets_per_sec = static_cast<double>(r.delivered) / r.wall_s;
  r.hops_per_sec = static_cast<double>(hops) / r.wall_s;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  r.pool_high_water = net.pool().stats().high_water;
  r.heap_fallback_events = net.events().stats().events_heap_fallback;
  return r;
}

// ---------------------------------------------------------------------
// Part 3: multi-core scaling on 8 disconnected 8-node lines.

struct DomainResult {
  double wall_s = 0;
  double events_per_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t heap_fallback_events = 0;
  std::size_t pool_high_water = 0;  // summed over every domain pool
};

/// 64 routers in 8 disconnected lines, one LSP and 4 CBR flows per
/// line.  The block partition aligns with the lines (8 nodes per line,
/// 64/D per domain), so every domain is fully independent: no boundary
/// links, infinite lookahead, one unbounded free-running window each.
DomainResult run_disconnected_lines(std::size_t domains,
                                    double sim_seconds) {
  constexpr int kLines = 8;
  constexpr int kPerLine = 8;
  net::QosConfig qos;
  qos.queue_capacity = 256;
  net::Network net(qos);
  net.events().set_scheduler(net::SchedulerBackend::kCalendar);
  net::ControlPlane cp(net);

  std::vector<std::vector<net::NodeId>> lines(kLines);
  for (int l = 0; l < kLines; ++l) {
    for (int i = 0; i < kPerLine; ++i) {
      core::RouterConfig cfg;
      cfg.type = (i == 0 || i == kPerLine - 1) ? hw::RouterType::kLer
                                               : hw::RouterType::kLsr;
      cfg.validate_wire = false;
      std::string name = "L" + std::to_string(l) + "R" + std::to_string(i);
      auto r = std::make_unique<core::EmbeddedRouter>(
          name, std::make_unique<sw::LinearEngine>(), cfg);
      auto* raw = r.get();
      lines[l].push_back(net.add_node(std::move(r)));
      cp.register_router(lines[l].back(), &raw->routing());
    }
    for (int i = 0; i + 1 < kPerLine; ++i) {
      net.connect(lines[l][i], lines[l][i + 1], 1e9, 100e-6);
    }
  }
  if (domains > 1 && !net.partition(domains, net::SyncMode::kFree)) {
    std::printf("  partition(%zu) refused\n", domains);
    return {};
  }

  std::vector<std::unique_ptr<net::CbrSource>> sources;
  for (int l = 0; l < kLines; ++l) {
    const std::string prefix = "10." + std::to_string(l + 1) + ".0.0/16";
    cp.establish_lsp(lines[l], *mpls::Prefix::parse(prefix));
    const auto dst = *mpls::Ipv4Address::parse(
        "10." + std::to_string(l + 1) + ".0.9");
    for (std::uint32_t f = 1; f <= 4; ++f) {
      const std::uint32_t flow = static_cast<std::uint32_t>(l) * 8 + f;
      net::FlowSpec spec{flow, lines[l].front(), {}, dst,
                         static_cast<std::uint8_t>(f), 256,
                         0.0,  sim_seconds};
      sources.push_back(std::make_unique<net::CbrSource>(
          net, spec, nullptr, /*interval=*/100e-6));
      sources.back()->start();
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.run();
  DomainResult r;
  r.wall_s = seconds_since(t0);
  const net::SimStats sim = net.sim_stats();
  r.events = sim.events_executed;
  r.events_per_sec = static_cast<double>(r.events) / r.wall_s;
  r.delivered = net.delivered_count();
  r.heap_fallback_events = sim.events_heap_fallback;
  r.pool_high_water = sim.pool_high_water;
  return r;
}

std::string human(double v) {
  char buf[32];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }

  std::printf("== simulator fast path (X5)%s ==\n\n",
              quick ? " [quick]" : "");

  // Part 1: events/sec.
  const std::uint64_t total = quick ? 200'000 : 2'000'000;
  const unsigned timers = 64;
  const double seed_eps = bench_seed_events(total, timers);
  const double heap_eps =
      bench_inline_events(net::SchedulerBackend::kHeap, total, timers);
  const double cal_eps =
      bench_inline_events(net::SchedulerBackend::kCalendar, total, timers);

  bench::Table events({"event queue", "events/sec", "vs seed"});
  auto ratio = [](double a, double b) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", a / b);
    return std::string(buf);
  };
  events.add_row({"seed (pq + std::function)", human(seed_eps), "1.00x"});
  events.add_row({"heap + InlineEvent", human(heap_eps),
                  ratio(heap_eps, seed_eps)});
  events.add_row({"calendar + InlineEvent", human(cal_eps),
                  ratio(cal_eps, seed_eps)});
  events.print();

  // Part 2: packets/sec on the 8-node line.
  const double sim_seconds = quick ? 0.25 : 2.0;
  const auto legacy =
      run_line(/*legacy=*/true, net::SchedulerBackend::kHeap, sim_seconds);
  const auto pooled_heap = run_line(/*legacy=*/false,
                                    net::SchedulerBackend::kHeap, sim_seconds);
  const auto pooled = run_line(/*legacy=*/false,
                               net::SchedulerBackend::kCalendar, sim_seconds);

  std::printf("\n");
  bench::Table line({"8-node line", "pkts/sec", "hops/sec", "events/sec",
                     "wall s", "pool hw", "heap-fallback ev"});
  line.add_row({"legacy copy + heap", human(legacy.packets_per_sec),
                human(legacy.hops_per_sec), human(legacy.events_per_sec),
                std::to_string(legacy.wall_s),
                std::to_string(legacy.pool_high_water),
                std::to_string(legacy.heap_fallback_events)});
  line.add_row({"pooled + heap", human(pooled_heap.packets_per_sec),
                human(pooled_heap.hops_per_sec),
                human(pooled_heap.events_per_sec),
                std::to_string(pooled_heap.wall_s),
                std::to_string(pooled_heap.pool_high_water),
                std::to_string(pooled_heap.heap_fallback_events)});
  line.add_row({"pooled + calendar", human(pooled.packets_per_sec),
                human(pooled.hops_per_sec), human(pooled.events_per_sec),
                std::to_string(pooled.wall_s),
                std::to_string(pooled.pool_high_water),
                std::to_string(pooled.heap_fallback_events)});
  line.print();
  const double speedup = pooled.packets_per_sec / legacy.packets_per_sec;
  std::printf("\nfast-path speedup: %.2fx\n\n", speedup);

  // Part 3: the domain sweep.
  const double sweep_seconds = quick ? 0.25 : 1.0;
  const std::size_t sweep[] = {1, 2, 4, 8};
  std::vector<DomainResult> scaled;
  for (const std::size_t d : sweep) {
    scaled.push_back(run_disconnected_lines(d, sweep_seconds));
  }

  bench::Table sweep_table({"8x8 lines", "events/sec", "wall s",
                            "delivered", "pool hw", "vs 1 domain"});
  for (std::size_t i = 0; i < std::size(sweep); ++i) {
    const DomainResult& r = scaled[i];
    sweep_table.add_row(
        {std::to_string(sweep[i]) + (sweep[i] == 1 ? " domain" : " domains"),
         human(r.events_per_sec), std::to_string(r.wall_s),
         std::to_string(r.delivered), std::to_string(r.pool_high_water),
         ratio(r.events_per_sec, scaled[0].events_per_sec)});
  }
  sweep_table.print();
  const double domain_speedup =
      scaled.back().events_per_sec / scaled.front().events_per_sec;
  std::printf("\n8-domain scaling: %.2fx on %u hardware threads\n\n",
              domain_speedup, std::thread::hardware_concurrency());

  // JSON artifact for CI.
  bench::BenchJson json("fastpath");
  json.set("quick", quick);
  json.set("events_per_sec.seed_pq_function", seed_eps);
  json.set("events_per_sec.heap_inline", heap_eps);
  json.set("events_per_sec.calendar_inline", cal_eps);
  auto line8 = [&](const std::string& key, const FastpathResult& r) {
    json.set("line8." + key + ".packets_per_sec", r.packets_per_sec);
    json.set("line8." + key + ".hops_per_sec", r.hops_per_sec);
    json.set("line8." + key + ".wall_s", r.wall_s);
    json.set("line8." + key + ".delivered", r.delivered);
  };
  line8("legacy", legacy);
  line8("pooled_heap", pooled_heap);
  line8("pooled", pooled);
  json.set("line8.speedup", speedup);
  for (std::size_t i = 0; i < std::size(sweep); ++i) {
    const std::string key = "domains.d" + std::to_string(sweep[i]);
    json.set(key + ".events_per_sec", scaled[i].events_per_sec);
    json.set(key + ".wall_s", scaled[i].wall_s);
    json.set(key + ".delivered", scaled[i].delivered);
    json.set(key + ".pool_high_water", scaled[i].pool_high_water);
  }
  json.set("domains.speedup_8", domain_speedup);
  json.set("domains.hardware_threads", std::thread::hardware_concurrency());
  json.write();
  std::printf("\n");

  bench::Checks checks;
  checks.expect_true("both modes deliver the same packet count",
                     legacy.delivered == pooled.delivered);
  checks.expect_true("pooled mode schedules no heap-fallback events",
                     pooled.heap_fallback_events == 0);
  checks.expect_true("pool high water is bounded (line depth, not load)",
                     pooled.pool_high_water < 4096);
  bool sweep_delivered_equal = true;
  bool sweep_no_heap_fallback = true;
  bool sweep_pools_bounded = true;
  for (const DomainResult& r : scaled) {
    sweep_delivered_equal &= r.delivered == scaled.front().delivered;
    sweep_no_heap_fallback &= r.heap_fallback_events == 0;
    sweep_pools_bounded &= r.pool_high_water < 4096;
  }
  checks.expect_true("every domain count delivers the same packets",
                     sweep_delivered_equal);
  checks.expect_true("partitioned runs schedule no heap-fallback events",
                     sweep_no_heap_fallback);
  checks.expect_true("domain pool high water stays bounded",
                     sweep_pools_bounded);
#ifdef NDEBUG
  // The headline gates, meaningful only with optimisation on.
  checks.expect_true("pooled+calendar >= 2x legacy packets/sec",
                     speedup >= 2.0);
  if (std::thread::hardware_concurrency() >= 8) {
    checks.expect_true("8 domains >= 4x events/sec vs 1 domain",
                       domain_speedup >= 4.0);
  } else {
    std::printf("  [SKIP] 4x domain gate (fewer than 8 hardware threads)\n");
  }
#else
  std::printf("  [SKIP] 2x gate (debug build; run Release to enforce)\n");
  std::printf("  [SKIP] 4x domain gate (debug build; run Release to enforce)\n");
#endif
  return checks.exit_code();
}
