// Shards-vs-throughput sweep for the sharded parallel forwarding plane.
//
// Programs 512 self-mapping level-2 swap entries, then pushes batches of
// labeled packets (256 flows, uniform over the table) through
// LinearEngine and ShardedEngine(N) for N in {1, 2, 4, 8} via
// update_batch.  Throughput is reported two ways:
//
//   * modelled — packets over the summed batch makespans at the paper's
//     50 MHz clock.  A sharded plane's makespan is its slowest shard's
//     cycle sum, so N shards are N parallel datapaths; this is the
//     quantity the sweep gates on (>= 3x at 8 shards vs 1).
//   * wall clock — informational only; it measures the host, which may
//     have a single core and then shows no parallel speedup at all.
//
// Emits sharding_sweep.csv and exits non-zero if the modelled sweep
// fails its checks.
#include <chrono>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rtl/clock_model.hpp"
#include "sw/linear_engine.hpp"
#include "sw/sharded_engine.hpp"

using namespace empls;

namespace {

constexpr unsigned kEntries = 512;
constexpr unsigned kFlows = 256;
constexpr std::size_t kBatch = 2048;
constexpr unsigned kRounds = 16;

void program(sw::LabelEngine& engine) {
  engine.clear();
  for (rtl::u32 label = 1; label <= kEntries; ++label) {
    // Self-mapping swaps: the label survives the update, so the same
    // flow keeps hitting the same entry round after round.
    engine.write_pair(2, mpls::LabelPair{label, label, mpls::LabelOp::kSwap});
  }
}

std::vector<mpls::Packet> make_templates() {
  std::mt19937 rng(20050415);  // fixed seed: identical load on every engine
  std::vector<mpls::Packet> packets(kBatch);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    auto& p = packets[i];
    p.flow_id = static_cast<rtl::u32>(i % kFlows);
    p.ip_ttl = 255;
    const rtl::u32 label = 1 + rng() % kEntries;
    p.stack.push(mpls::LabelEntry{label, 0, true, 255});
  }
  return packets;
}

struct RunResult {
  rtl::u64 model_cycles = 0;  // summed batch makespans
  double wall_s = 0;
  rtl::u64 discards = 0;
};

RunResult run(sw::LabelEngine& engine,
              const std::vector<mpls::Packet>& templates) {
  RunResult result;
  std::vector<mpls::Packet> work;
  std::vector<mpls::Packet*> ptrs(templates.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned round = 0; round < kRounds; ++round) {
    work = templates;  // fresh TTLs every round
    for (std::size_t i = 0; i < work.size(); ++i) {
      ptrs[i] = &work[i];
    }
    const auto outcomes = engine.update_batch(ptrs, hw::RouterType::kLsr);
    result.model_cycles += engine.last_batch_makespan_cycles();
    for (const auto& o : outcomes) {
      result.discards += o.discarded ? 1 : 0;
    }
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  return result;
}

std::string fmt(double v, const char* spec = "%.2f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

}  // namespace

int main() {
  std::printf("== Sharded forwarding plane: shards vs throughput ==\n\n");
  bench::Checks checks;
  const rtl::ClockModel clock;
  const auto templates = make_templates();
  const double total_packets = static_cast<double>(kBatch) * kRounds;

  bench::Table table({"engine", "shards", "packets", "model cycles",
                      "model Mpkt/s @50MHz", "speedup vs 1 shard",
                      "wall ms"});

  // Baseline: the golden single-datapath engine.
  rtl::u64 linear_cycles = 0;
  {
    sw::LinearEngine linear;
    program(linear);
    const auto r = run(linear, templates);
    linear_cycles = r.model_cycles;
    checks.expect_eq("linear: no discards", 0,
                     static_cast<long long>(r.discards));
    table.add_row({"linear", "1", fmt(total_packets, "%.0f"),
                   std::to_string(r.model_cycles),
                   fmt(total_packets / clock.seconds(r.model_cycles) / 1e6),
                   "1.00", fmt(r.wall_s * 1e3)});
  }

  double speedup8 = 0;
  rtl::u64 sharded1_cycles = 0;
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    sw::ShardedEngine engine(shards);
    program(engine);
    const auto r = run(engine, templates);
    if (shards == 1) {
      sharded1_cycles = r.model_cycles;
    }
    const double speedup = static_cast<double>(sharded1_cycles) /
                           static_cast<double>(r.model_cycles);
    if (shards == 8) {
      speedup8 = speedup;
    }
    checks.expect_eq("sharded:" + std::to_string(shards) + ": no discards",
                     0, static_cast<long long>(r.discards));
    table.add_row({"sharded", std::to_string(shards),
                   fmt(total_packets, "%.0f"), std::to_string(r.model_cycles),
                   fmt(total_packets / clock.seconds(r.model_cycles) / 1e6),
                   fmt(speedup), fmt(r.wall_s * 1e3)});
  }

  table.print();
  table.write_csv("sharding_sweep.csv");
  std::printf("\n");

  // One shard serialises everything, so its makespan must equal the
  // single-datapath baseline exactly (the replicas ARE LinearEngines).
  checks.expect_eq("sharded:1 modelled cycles == linear",
                   static_cast<long long>(linear_cycles),
                   static_cast<long long>(sharded1_cycles));
  checks.expect_true("modelled speedup at 8 shards >= 3x", speedup8 >= 3.0);
  return checks.exit_code();
}
