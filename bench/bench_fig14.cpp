// Reproduces Figure 14: simulation of level-1 label pair entries.
//
// Paper narrative: ten label pairs are written with packet identifiers
// 600..609 and new labels 500..509 (alternating operations), w_index
// incrementing 1..10.  A lookup of packet identifier 604 then makes
// r_index scan to the matching entry, lookup_done pulses for one clock
// cycle, the new label 504 and operation 3 appear, and packetdiscard
// stays low.
#include "figure_common.hpp"

using namespace empls;

int main() {
  std::printf("== Figure 14: level-1 information base, write + lookup ==\n");
  bench::Checks checks;
  bench::FigureRig rig(/*level=*/1);

  // Write phase: w_index must ramp 1..10 ("the label pairs are being
  // properly stored and not overwritten").
  rig.write_ten_pairs(1, /*first_index=*/600);
  checks.expect_eq("w_index after ten saves", 10,
                   static_cast<long long>(rig.modifier.level_count(1)));
  long prev = rig.trace.find_first("w_index", 1);
  bool w_ramps = prev >= 0;
  for (rtl::u32 i = 2; i <= 10; ++i) {
    const long cur = rig.trace.find_first("w_index", i);
    w_ramps = w_ramps && cur == prev + 3;  // one save every 3 cycles
    prev = cur;
  }
  checks.expect_true("w_index increments once per 3-cycle save", w_ramps);

  // Lookup phase: packet identifier 604.
  const std::size_t lookup_start = rig.trace.num_samples();
  const auto result = rig.modifier.search(1, 604);
  rig.modifier.sim().run(3);  // idle tail so pulse edges are visible
  checks.expect_true("entry found", result.found);
  checks.expect_eq("new label", 504, result.label);
  checks.expect_eq("operation", 3, result.operation);
  checks.expect_eq("lookup cost (5th entry, 3k+5)", 20,
                   static_cast<long long>(result.cycles));

  // Signal-level narrative.
  const long done_at = rig.trace.find_first("lookup_done", 1, lookup_start);
  checks.expect_true("lookup_done pulses", done_at >= 0);
  if (done_at >= 0) {
    const auto s = static_cast<std::size_t>(done_at);
    checks.expect_true(
        "lookup_done is a one-cycle pulse",
        rig.trace.value("lookup_done", s + 1) == 0);
    checks.expect_eq("r_index stops at the matching entry", 4,
                     static_cast<long long>(rig.trace.value("r_index", s)));
    checks.expect_eq("label_out after lookup", 504,
                     static_cast<long long>(rig.trace.value("label_out", s)));
    checks.expect_eq(
        "operation_out after lookup", 3,
        static_cast<long long>(rig.trace.value("operation_out", s)));
  }
  checks.expect_true(
      "packetdiscard stays low",
      rig.trace.find_first("packetdiscard", 1, lookup_start) < 0);

  rig.emit("fig14.vcd", lookup_start > 3 ? lookup_start - 3 : 0,
           rig.trace.num_samples());
  return checks.exit_code();
}
