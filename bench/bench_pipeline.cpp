// Extension experiment X8: packet processing in hardware vs software.
//
// Figure 6 leaves the ingress/egress packet processing interfaces "in
// either domain".  This bench measures the hardware option — the
// cycle-accurate store-and-forward pipeline of hw/packet_pipeline —
// across payload sizes and DMA bus widths, and sets it against a
// software packet path (parse + rebuild on a host CPU, charged at the
// era-appropriate fixed cost the network model uses).
//
// Shape to observe: the modifier's update cost is size-independent, so
// for small (VoIP-sized) packets the pipeline is dominated by the label
// operation, while for MTU-sized packets the byte movement dominates —
// the bus width, not the search, becomes the knob that matters.
#include <string>

#include "bench_util.hpp"
#include "hw/packet_pipeline.hpp"
#include "rtl/clock_model.hpp"

using namespace empls;

namespace {

mpls::Packet make_packet(std::size_t payload) {
  mpls::Packet p;
  p.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 7);
  p.cos = 5;
  p.ip_ttl = 64;
  p.payload.assign(payload, 0xAB);
  p.stack.push(mpls::LabelEntry{40, 5, false, 64});
  return p;
}

}  // namespace

int main() {
  std::printf("== X8: hardware packet processing pipeline ==\n\n");
  bench::Checks checks;
  const rtl::ClockModel clock;

  bench::Table table({"payload (B)", "bus (B/cyc)", "ingress", "update",
                      "egress", "total cycles", "us @50MHz",
                      "modifier share"});
  rtl::u64 small_total = 0;
  rtl::u64 small_update = 0;
  rtl::u64 big_total = 0;
  rtl::u64 big_update = 0;
  rtl::u64 big_wide_total = 0;

  for (const unsigned bus : {4u, 16u}) {
    for (const std::size_t payload : {64u, 160u, 1500u}) {
      hw::PacketPipeline pipe(hw::RouterType::kLsr, bus);
      pipe.modifier().write_pair(
          2, mpls::LabelPair{40, 41, mpls::LabelOp::kSwap});
      const auto r = pipe.process(make_packet(payload), 2);
      if (r.discarded || r.malformed) {
        std::printf("unexpected pipeline failure\n");
        return 1;
      }
      char us[32];
      char share[32];
      std::snprintf(us, sizeof us, "%.2f", clock.microseconds(r.cycles));
      std::snprintf(share, sizeof share, "%.0f%%",
                    100.0 * static_cast<double>(r.update_cycles) /
                        static_cast<double>(r.cycles));
      table.add_row({std::to_string(payload), std::to_string(bus),
                     std::to_string(r.ingress_cycles),
                     std::to_string(r.update_cycles),
                     std::to_string(r.egress_cycles),
                     std::to_string(r.cycles), us, share});
      if (bus == 4 && payload == 64) {
        small_total = r.cycles;
        small_update = r.update_cycles;
      }
      if (bus == 4 && payload == 1500) {
        big_total = r.cycles;
        big_update = r.update_cycles;
      }
      if (bus == 16 && payload == 1500) {
        big_wide_total = r.cycles;
      }
    }
  }
  table.print();
  table.write_csv("pipeline.csv");

  std::printf(
      "\nsoftware packet path reference (network model default): 2 us per "
      "packet, size-independent at these scales.\n");

  checks.expect_true("update cost is payload-independent",
                     small_update == big_update);
  checks.expect_true(
      "small packets: label operation is a major share (> 1/5 of total)",
      small_update * 5 > small_total);
  checks.expect_true(
      "MTU packets: byte movement dominates (update < 1/10 of total)",
      big_update * 10 < big_total);
  checks.expect_true("a 4x wider bus reclaims most of the MTU cost",
                     big_wide_total < big_total / 2);
  const double small_us = clock.microseconds(small_total);
  checks.expect_true(
      "hardware pipeline beats the 2 us software path for VoIP packets",
      small_us < 2.0);
  return checks.exit_code();
}
