// Ablation X3: information-base organisation.
//
// DESIGN.md calls out the paper's central design choice — a single
// shared comparator scanning each level linearly (3n+5 cycles) — and two
// alternatives an FPGA could implement instead:
//
//   * CAM: one comparator per entry, constant 7-cycle lookups, at the
//     resource cost of 1024 parallel comparators + priority encoder;
//   * hashed memory: constant ~11-cycle lookups (hash, probe, verify)
//     with one comparator, at the cost of collision-handling logic.
//
// This bench tabulates modelled lookup latency vs occupancy and the
// comparator-resource proxy for each organisation, exposing the
// latency/area trade-off the paper's choice sits on.
#include <string>

#include "bench_util.hpp"
#include "hw/cycle_model.hpp"
#include "rtl/clock_model.hpp"
#include "sw/cam_engine.hpp"

using namespace empls;

namespace {

/// Modelled hashed-info-base lookup: hash (2) + dispatch (2) + probe
/// read (3) + compare/verify (3) + result (1).  Collisions would add
/// probes; we charge the collision-free path, the best case for hash.
constexpr rtl::u64 kHashSearchCycles = 11;

}  // namespace

int main() {
  std::printf("== X3 ablation: information-base organisation ==\n\n");
  bench::Checks checks;
  const rtl::ClockModel clock;

  bench::Table lat({"avg hit depth k", "linear (cycles)", "CAM (cycles)",
                    "hash (cycles)", "linear (us)", "CAM (us)"});
  for (rtl::u64 k : {1ull, 8ull, 32ull, 128ull, 512ull, 1024ull}) {
    const rtl::u64 linear = hw::search_cycles(k);
    char lus[32];
    char cus[32];
    std::snprintf(lus, sizeof lus, "%.2f", clock.microseconds(linear));
    std::snprintf(cus, sizeof cus, "%.2f",
                  clock.microseconds(sw::kCamSearchCycles));
    lat.add_row({std::to_string(k), std::to_string(linear),
                 std::to_string(sw::kCamSearchCycles),
                 std::to_string(kHashSearchCycles), lus, cus});
  }
  lat.print();
  lat.write_csv("ablation_search.csv");

  std::printf("\nresource proxy (comparator bit-slices per level):\n");
  bench::Table res({"organisation", "level 1 (32-bit idx)",
                    "levels 2/3 (20-bit idx)", "extra logic"});
  res.add_row({"linear (paper)", "32", "20", "address counters"});
  res.add_row({"CAM",
               std::to_string(sw::cam_comparator_bits(1024, 32)),
               std::to_string(sw::cam_comparator_bits(1024, 20)),
               "priority encoder"});
  res.add_row({"hash", "32", "20", "hash unit + collision probes"});
  res.print();

  // The trade-off the table shows: CAM is faster than the linear scan
  // for any occupancy above ~1, but costs three orders of magnitude
  // more comparator area.
  checks.expect_true("CAM beats linear for k >= 1",
                     sw::kCamSearchCycles <= hw::search_cycles(1));
  checks.expect_true(
      "linear beats CAM on area by >100x",
      sw::cam_comparator_bits(1024, 20) > 100 * 20);
  checks.expect_true("hash latency is occupancy-independent and close to CAM",
                     kHashSearchCycles <= hw::search_cycles(2));

  // Behavioural equivalence of the CAM engine (same semantics, different
  // cost model): one swap through each engine agrees.
  {
    sw::CamEngine cam;
    sw::LinearEngine lin;
    for (auto* e : {static_cast<sw::LabelEngine*>(&cam),
                    static_cast<sw::LabelEngine*>(&lin)}) {
      e->write_pair(2, mpls::LabelPair{40, 77, mpls::LabelOp::kSwap});
    }
    mpls::Packet p1;
    p1.stack.push(mpls::LabelEntry{40, 2, false, 64});
    mpls::Packet p2 = p1;
    const auto o1 = cam.update(p1, 2, hw::RouterType::kLsr);
    const auto o2 = lin.update(p2, 2, hw::RouterType::kLsr);
    checks.expect_true("CAM and linear engines agree on behaviour",
                       !o1.discarded && !o2.discarded &&
                           p1.stack.top().label == p2.stack.top().label);
    checks.expect_true("CAM is cheaper in modelled cycles",
                       o1.hw_cycles < o2.hw_cycles);
  }

  return checks.exit_code();
}
