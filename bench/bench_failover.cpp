// Extension experiment X4: failure and restoration.
//
// A VoIP flow crosses the primary LSP; at t=300 ms the primary core
// link is cut, and at t=350 ms the (software) control plane reroutes
// the LSP over the protection path — re-signalling labels and, where a
// binding changes on an existing key, triggering the hardware
// reset-and-reprogram flow whose cost the paper's Section 4 worst case
// (6167 cycles) bounds.
//
// Reported: per-phase delivery, the outage's packet loss, and the
// hardware reprogramming activity during restoration.
#include <memory>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

int main() {
  std::printf("== X4: link failure and LSP restoration ==\n\n");
  bench::Checks checks;

  net::Network net;
  net::ControlPlane cp(net);
  net::FlowStats stats;

  auto add = [&](const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  };

  const auto a = add("LER-A", hw::RouterType::kLer);
  const auto b = add("LSR-B", hw::RouterType::kLsr);
  const auto c = add("LSR-C", hw::RouterType::kLsr);
  const auto x = add("LSR-X", hw::RouterType::kLsr);
  const auto d = add("LER-D", hw::RouterType::kLer);
  net.connect(a, b, 100e6, 1e-3);
  net.connect(b, c, 100e6, 1e-3);  // primary core link (will fail)
  net.connect(b, x, 100e6, 3e-3);  // protection path
  net.connect(x, c, 100e6, 3e-3);
  net.connect(c, d, 100e6, 1e-3);

  const auto fec = *mpls::Prefix::parse("10.7.0.0/16");
  const auto lsp = cp.establish_lsp({a, b, c, d}, fec);
  if (!lsp) {
    std::printf("LSP establishment failed\n");
    return 1;
  }

  // Track deliveries per 100 ms phase.
  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    stats.on_delivered(p, net.now());
  });

  net::FlowSpec spec{1,
                     a,
                     *mpls::Ipv4Address::parse("192.168.0.1"),
                     *mpls::Ipv4Address::parse("10.7.0.9"),
                     6,
                     160,
                     0.0,
                     0.9999};
  net::CbrSource voip(net, spec, &stats, 1e-3);  // 1000 pps probe flow
  voip.start();

  constexpr double kFailAt = 0.3;
  constexpr double kRerouteAt = 0.35;
  std::uint64_t reprograms_before = 0;
  std::uint64_t reprograms_after = 0;
  bool reroute_ok = false;

  net.events().schedule_at(kFailAt, [&] {
    net.set_connection_up(b, c, false);
    std::printf("t=%.0f ms: primary core link B-C cut\n", net.now() * 1e3);
  });
  net.events().schedule_at(kRerouteAt, [&] {
    reprograms_before =
        net.node_as<core::EmbeddedRouter>(a).routing().hardware_reprograms();
    const auto replacement = cp.reroute_lsp(*lsp);
    reroute_ok = replacement.has_value();
    reprograms_after =
        net.node_as<core::EmbeddedRouter>(a).routing().hardware_reprograms();
    std::printf("t=%.0f ms: control plane rerouted the LSP (%s)\n",
                net.now() * 1e3, reroute_ok ? "ok" : "FAILED");
  });

  net.run();

  const auto& flow = stats.flow(1);
  const std::uint64_t sent = flow.sent;
  const std::uint64_t delivered = flow.delivered;
  const std::uint64_t lost = sent - delivered;

  std::printf("\n");
  bench::Table table({"quantity", "value"});
  table.add_row({"packets sent (1 s @ 1000 pps)", std::to_string(sent)});
  table.add_row({"packets delivered", std::to_string(delivered)});
  table.add_row({"packets lost", std::to_string(lost)});
  table.add_row({"outage window", "50 ms (fail at 300 ms, reroute at 350 ms)"});
  table.add_row({"ingress hardware reprograms during restoration",
                 std::to_string(reprograms_after - reprograms_before)});
  table.add_row({"paper worst-case cost of one reprogram",
                 "6167 cycles = 0.123 ms @ 50 MHz"});
  table.print();
  table.write_csv("failover.csv");

  checks.expect_true("reroute succeeded", reroute_ok);
  // Loss is confined to (roughly) the outage window: ~50 ms of 1000 pps
  // plus packets in flight.
  checks.expect_true("loss is bounded by the outage window (45..70)",
                     lost >= 45 && lost <= 70);
  checks.expect_true(
      "the ingress reprogrammed its hardware (stale exact entry purge)",
      reprograms_after > reprograms_before);
  checks.expect_true("traffic flows after restoration: >99% delivered "
                     "outside the window",
                     delivered >= sent - 70);
  return checks.exit_code();
}
