// Extension experiment X4: failure recovery — global restoration versus
// RFC 4090-style local protection, on the same topology and fault.
//
// A VoIP probe flow crosses the primary LSP A-B-C-D; at t=300 ms the
// core link B-C dies, and at t=600 ms it recovers.  The experiment runs
// twice:
//
//   restoration  The hello protocol (10 ms hellos, dead multiplier 3)
//                must count a 30 ms dead interval before the control
//                plane re-signals the LSP over B-X-C.  Traffic
//                blackholes for the whole detection window.
//
//   protection   ControlPlane::protect_lsp pre-signed a detour around
//                B-C and installed its transit bindings ahead of the
//                failure.  The point of local repair (B) reacts to the
//                fast link-down signal — loss of light, data-plane time
//                — with one local rebind; on the paper's hardware that
//                is the reset-and-reprogram flow bounded at 6167 cycles
//                (0.123 ms @ 50 MHz).  No signaling round-trip, and the
//                hello detector is filtered off the switched LSP.  When
//                B-C recovers, the PLR reverts to the primary.
//
// Reported: per-mode loss, switch/revert counts, re-signaling activity,
// and flow conservation (sent = delivered + accounted drops) for both.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "net/failure_detector.hpp"
#include "net/fault_injector.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/protection.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

struct ModeResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;
  std::uint64_t accounted_drops = 0;
  bool conserved = false;
  std::uint64_t switches = 0;
  std::uint64_t reverts = 0;
  unsigned rerouted = 0;           // LSPs re-signalled by restoration
  unsigned locally_protected = 0;  // LSPs the detector left to the PLR
  double switch_latency = -1.0;    // cut -> protection switch, seconds
  std::uint64_t plr_reprograms = 0;
};

constexpr double kFailAt = 0.3;
constexpr double kRecoverAt = 0.6;

ModeResult run_mode(bool protect) {
  net::Network net;
  net::ControlPlane cp(net);
  net::FlowStats stats;
  net::DropAccountant drops(net);

  auto add = [&](const char* name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  };

  const auto a = add("LER-A", hw::RouterType::kLer);
  const auto b = add("LSR-B", hw::RouterType::kLsr);
  const auto c = add("LSR-C", hw::RouterType::kLsr);
  const auto x = add("LSR-X", hw::RouterType::kLsr);
  const auto d = add("LER-D", hw::RouterType::kLer);
  net.connect(a, b, 100e6, 1e-3);
  net.connect(b, c, 100e6, 1e-3);  // primary core link (will fail)
  net.connect(b, x, 100e6, 3e-3);  // protection path
  net.connect(x, c, 100e6, 3e-3);
  net.connect(c, d, 100e6, 1e-3);

  const auto fec = *mpls::Prefix::parse("10.7.0.0/16");
  const auto lsp = cp.establish_lsp({a, b, c, d}, fec);
  if (!lsp) {
    return {};
  }

  // Both modes run the same hello protocol; in protection mode it is
  // the slow backstop behind the fast link-down signal.
  net::FailureDetector detector(net, cp, 10e-3, 3);
  detector.watch_all();

  net::ProtectionManager protection(net, cp);
  if (protect) {
    cp.protect_lsp(*lsp);
    protection.attach_fast_signal();
    protection.arm(detector);
  }
  detector.start(1.0);

  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    stats.on_delivered(p, net.now());
  });

  net::FlowSpec spec{1,
                     a,
                     *mpls::Ipv4Address::parse("192.168.0.1"),
                     *mpls::Ipv4Address::parse("10.7.0.9"),
                     6,
                     160,
                     0.0,
                     0.9999};
  net::CbrSource voip(net, spec, &stats, 1e-3);  // 1000 pps probe flow
  voip.start();

  net::FaultInjector injector(net, cp);
  injector.inject(net::FaultSpec{net::FaultKind::kCut, kFailAt, b, c,
                                 kRecoverAt - kFailAt, 0});

  const std::uint64_t reprograms_before =
      net.node_as<core::EmbeddedRouter>(b).routing().hardware_reprograms();
  net.run();

  ModeResult r;
  const auto& flow = stats.flow(1);
  r.sent = flow.sent;
  r.delivered = flow.delivered;
  r.lost = r.sent - r.delivered;
  r.accounted_drops = drops.drops(1);
  r.conserved = drops.conserved(stats);
  r.switches = protection.switches();
  r.reverts = protection.reverts();
  for (const auto& event : detector.events()) {
    r.rerouted += event.rerouted;
    r.locally_protected += event.locally_protected;
  }
  for (const auto& event : protection.events()) {
    if (!event.link_up && r.switch_latency < 0) {
      r.switch_latency = event.at - kFailAt;
    }
  }
  r.plr_reprograms =
      net.node_as<core::EmbeddedRouter>(b).routing().hardware_reprograms() -
      reprograms_before;
  return r;
}

}  // namespace

int main() {
  std::printf("== X4: restoration vs local protection ==\n\n");
  bench::Checks checks;

  const ModeResult restoration = run_mode(false);
  const ModeResult protection = run_mode(true);

  bench::Table table({"quantity", "restoration", "protection"});
  table.add_row({"packets sent (1 s @ 1000 pps)",
                 std::to_string(restoration.sent),
                 std::to_string(protection.sent)});
  table.add_row({"packets delivered", std::to_string(restoration.delivered),
                 std::to_string(protection.delivered)});
  table.add_row({"packets lost", std::to_string(restoration.lost),
                 std::to_string(protection.lost)});
  table.add_row({"accounted drops", std::to_string(restoration.accounted_drops),
                 std::to_string(protection.accounted_drops)});
  table.add_row({"flow conserved", restoration.conserved ? "yes" : "NO",
                 protection.conserved ? "yes" : "NO"});
  table.add_row({"LSPs re-signalled", std::to_string(restoration.rerouted),
                 std::to_string(protection.rerouted)});
  table.add_row({"protection switches", std::to_string(restoration.switches),
                 std::to_string(protection.switches)});
  table.add_row({"protection reverts", std::to_string(restoration.reverts),
                 std::to_string(protection.reverts)});
  table.add_row({"switch latency after cut",
                 "-",
                 protection.switch_latency >= 0
                     ? std::to_string(protection.switch_latency * 1e3) + " ms"
                     : "-"});
  table.add_row({"PLR hardware reprograms",
                 std::to_string(restoration.plr_reprograms),
                 std::to_string(protection.plr_reprograms)});
  table.add_row({"paper worst-case cost of one reprogram",
                 "6167 cycles = 0.123 ms @ 50 MHz", "(same)"});
  table.print();
  table.write_csv("failover.csv");

  // Restoration pays the detection window: depending on where the cut
  // lands in the hello phase, 2..3 hello intervals (20-30 ms of
  // 1000 pps) plus packets in flight.
  checks.expect_true("restoration re-signalled the LSP",
                     restoration.rerouted >= 1);
  checks.expect_true("restoration loss spans the detection window (18..70)",
                     restoration.lost >= 18 && restoration.lost <= 70);
  // Protection switches at the PLR in data-plane time: no re-signaling,
  // loss bounded by the packets already in flight toward the dead link —
  // far inside one 30 ms detection window.
  checks.expect_true("protection switched exactly once and reverted",
                     protection.switches == 1 && protection.reverts == 1);
  checks.expect_true("protection did not re-signal the LSP",
                     protection.rerouted == 0 &&
                         protection.locally_protected >= 1);
  checks.expect_true("protection switch within one detection window",
                     protection.switch_latency >= 0 &&
                         protection.switch_latency <= 30e-3);
  checks.expect_true("protection loses strictly fewer packets",
                     protection.lost < restoration.lost);
  checks.expect_true("protection loss bounded by in-flight packets (<=10)",
                     protection.lost <= 10);
  checks.expect_true("both modes conserve the flow",
                     restoration.conserved && protection.conserved);
  return checks.exit_code();
}
