// Ablation X9: the append-only information base.
//
// The paper's information base supports appending pairs and a global
// reset — changing one binding costs the Section 4 worst case (reset,
// re-push the stack, rewrite every pair, 6167 cycles for a full level).
// The obvious hardware alternative adds a valid bit per entry:
// invalidating one binding is then a constant-time write, at the cost of
// (a) one extra bit of memory per entry and (b) searches that can no
// longer early-terminate at w_index but must scan every slot ever used.
//
// This bench prices both designs analytically (using the measured
// Table 6 primitives) across update-churn workloads, exposing where the
// paper's simpler design wins and where it collapses.
#include <string>

#include "bench_util.hpp"
#include "hw/cycle_model.hpp"
#include "rtl/clock_model.hpp"

using namespace empls;

namespace {

/// Paper design: rebinding k of n entries costs k full reprograms
/// (conservative: the control plane batches at most one rebind each).
rtl::u64 append_only_rebind_cycles(rtl::u64 n, rtl::u64 rebinds) {
  // reset + rewrite n pairs, per rebind batch.
  return rebinds * (hw::kResetCycles + n * hw::kWritePairCycles);
}

/// Valid-bit design: invalidate (1 write) + append the new pair.
rtl::u64 valid_bit_rebind_cycles(rtl::u64 rebinds) {
  return rebinds * (hw::kWritePairCycles + hw::kWritePairCycles);
}

/// Search cost: the paper's design scans the live prefix (w_index
/// entries); the valid-bit design scans live + dead slots.
rtl::u64 search_cost(rtl::u64 live, rtl::u64 dead) {
  return hw::search_cycles(live + dead);
}

}  // namespace

int main() {
  std::printf("== X9 ablation: append-only vs valid-bit information base "
              "==\n\n");
  bench::Checks checks;
  const rtl::ClockModel clock;

  // Scenario: a level with n live pairs undergoing `rebinds` binding
  // changes (LSP churn), followed by a worst-case search.
  bench::Table table({"live pairs", "rebinds", "append-only (cycles)",
                      "valid-bit (cycles)", "append-only (ms)",
                      "winner"});
  struct Row {
    rtl::u64 n;
    rtl::u64 rebinds;
  };
  const Row rows[] = {{64, 1},   {64, 16},   {1024, 1},
                      {1024, 16}, {1024, 256}};
  for (const auto& row : rows) {
    // Total churn cost + one subsequent worst-case lookup.
    const rtl::u64 append = append_only_rebind_cycles(row.n, row.rebinds) +
                            search_cost(row.n, 0);
    // Valid-bit: every rebind leaves a dead slot behind.
    const rtl::u64 valid = valid_bit_rebind_cycles(row.rebinds) +
                           search_cost(row.n, row.rebinds);
    char ms[32];
    std::snprintf(ms, sizeof ms, "%.3f", clock.milliseconds(append));
    table.add_row({std::to_string(row.n), std::to_string(row.rebinds),
                   std::to_string(append), std::to_string(valid), ms,
                   append <= valid ? "append-only" : "valid-bit"});
  }
  table.print();
  table.write_csv("ablation_reprogram.csv");

  // The crossover facts the table shows.
  checks.expect_true(
      "one rebind of a small table: append-only is fine",
      append_only_rebind_cycles(64, 1) < 2 * valid_bit_rebind_cycles(1) +
                                             search_cost(64, 1));
  checks.expect_true(
      "full-level churn: valid-bit wins by >100x on rebind cost",
      append_only_rebind_cycles(1024, 256) >
          100 * valid_bit_rebind_cycles(256));
  checks.expect_true(
      "valid-bit search degradation is mild (dead slots add 3 cycles "
      "each)",
      search_cost(1024, 256) - search_cost(1024, 0) == 3 * 256);

  std::printf(
      "\nreading: the paper's append-only choice is sound for the static\n"
      "LSP tables of its era (rebinds are rare; 0.123 ms per reprogram is\n"
      "invisible at control-plane time scales), but any deployment with\n"
      "per-flow churn — e.g. the ingress flow cache this repo adds —\n"
      "would want the valid-bit variant.\n");
  return checks.exit_code();
}
