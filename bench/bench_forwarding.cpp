// Extension experiment X2: end-to-end forwarding through an MPLS core.
//
// The paper's introduction motivates MPLS with VoIP and streaming video
// that "perform poorly when the core network is relatively congested".
// This bench builds a 6-node network (2 LERs, 4 LSRs, with a bottleneck
// core link), loads it with a VoIP flow, a video flow and bursty
// best-effort data, and reports per-class delivery, latency and loss:
//
//   1. with CoS-aware strict-priority scheduling (the paper's QoS case),
//   2. with FIFO scheduling (no QoS), as the contrast.
//
// The shape to observe: under congestion, VoIP latency/loss stays low
// only in the CoS-aware configuration; bulk traffic absorbs the loss.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "net/ldp.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"
#include "net/traffic.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

constexpr std::uint32_t kVoipFlow = 1;
constexpr std::uint32_t kVideoFlow = 2;
constexpr std::uint32_t kBulkFlow = 3;

struct RunResult {
  net::FlowStats stats;
  rtl::u64 engine_cycles = 0;
  rtl::u64 packets = 0;
};

RunResult run_scenario(net::SchedulerKind scheduler) {
  net::QosConfig qos;
  qos.scheduler = scheduler;
  qos.queue_capacity = 24;

  net::Network net(qos);
  net::ControlPlane cp(net);

  auto add = [&](const std::string& name, hw::RouterType type) {
    core::RouterConfig cfg;
    cfg.type = type;
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    const auto id = net.add_node(std::move(r));
    cp.register_router(id, &raw->routing());
    return id;
  };

  const auto ler_w = add("LER-W", hw::RouterType::kLer);
  const auto lsr_a = add("LSR-A", hw::RouterType::kLsr);
  const auto lsr_b = add("LSR-B", hw::RouterType::kLsr);
  const auto lsr_c = add("LSR-C", hw::RouterType::kLsr);
  const auto lsr_d = add("LSR-D", hw::RouterType::kLsr);
  const auto ler_e = add("LER-E", hw::RouterType::kLer);

  // Edge links are fast; the A-B core link is the 10 Mb/s bottleneck;
  // C-D is a longer but uncongested alternate.
  net.connect(ler_w, lsr_a, 100e6, 0.5e-3);
  net.connect(lsr_a, lsr_b, 10e6, 1e-3);   // bottleneck
  net.connect(lsr_b, ler_e, 100e6, 0.5e-3);
  net.connect(lsr_a, lsr_c, 100e6, 2e-3);
  net.connect(lsr_c, lsr_d, 100e6, 2e-3);
  net.connect(lsr_d, lsr_b, 100e6, 2e-3);

  // All three classes cross the bottleneck (the congestion scenario).
  cp.establish_lsp({ler_w, lsr_a, lsr_b, ler_e},
                   *mpls::Prefix::parse("10.1.0.0/16"));

  RunResult result;
  net.set_delivery_handler([&](net::NodeId, const mpls::Packet& p) {
    result.stats.on_delivered(p, net.now());
  });

  const auto dst = *mpls::Ipv4Address::parse("10.1.0.9");
  const auto src = *mpls::Ipv4Address::parse("192.168.0.1");

  // VoIP: 50 pps of 160-byte frames, CoS 6.
  net::FlowSpec voip{kVoipFlow, ler_w, src, dst, 6, 160, 0.0, 1.0};
  net::CbrSource voip_src(net, voip, &result.stats, 20e-3);
  // Video: 30 fps, 8 packets of 1200 bytes per frame, CoS 4.
  net::FlowSpec video{kVideoFlow, ler_w, src, dst, 4, 1200, 0.0, 1.0};
  net::VideoSource video_src(net, video, &result.stats, 1.0 / 30.0, 8);
  // Bulk data: Poisson 900 pps of 1000-byte packets, CoS 1 — enough to
  // saturate the 10 Mb/s bottleneck together with the video.
  net::FlowSpec bulk{kBulkFlow, ler_w, src, dst, 1, 1000, 0.0, 1.0};
  net::PoissonSource bulk_src(net, bulk, &result.stats, 900.0, 42);

  voip_src.start();
  video_src.start();
  bulk_src.start();
  net.run();

  for (const auto id : {ler_w, lsr_a, lsr_b, ler_e}) {
    const auto& s = net.node_as<core::EmbeddedRouter>(id).stats();
    result.engine_cycles += s.engine_cycles;
    result.packets += s.received;
  }
  return result;
}

std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", seconds * 1e3);
  return buf;
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

void report(const char* title, const RunResult& r, bench::Table& table,
            bench::BenchJson& json, const std::string& key) {
  const char* flow_names[] = {"", "VoIP (CoS 6)", "video (CoS 4)",
                              "bulk (CoS 1)"};
  const char* flow_keys[] = {"", "voip", "video", "bulk"};
  for (std::uint32_t f : {kVoipFlow, kVideoFlow, kBulkFlow}) {
    const auto& flow = r.stats.flow(f);
    table.add_row({title, flow_names[f], std::to_string(flow.sent),
                   std::to_string(flow.delivered), pct(flow.loss_rate()),
                   ms(flow.latency.mean()), ms(flow.latency.percentile(0.99))});
    const std::string base = key + "." + flow_keys[f];
    json.set(base + ".sent", flow.sent);
    json.set(base + ".delivered", flow.delivered);
    json.set(base + ".loss_rate", flow.loss_rate());
    json.set(base + ".latency_mean_s", flow.latency.mean());
    json.set(base + ".latency_p99_s", flow.latency.percentile(0.99));
  }
}

}  // namespace

int main() {
  std::printf(
      "== X2: congested core, CoS-aware vs FIFO scheduling "
      "(1 s simulated) ==\n\n");
  bench::Checks checks;
  bench::BenchJson json("forwarding");

  const RunResult with_qos = run_scenario(net::SchedulerKind::kStrictPriority);
  const RunResult no_qos = run_scenario(net::SchedulerKind::kFifo);

  bench::Table table({"scheduler", "flow", "sent", "delivered", "loss",
                      "mean (ms)", "p99 (ms)"});
  report("strict-priority", with_qos, table, json, "strict_priority");
  report("FIFO", no_qos, table, json, "fifo");
  table.print();
  table.write_csv("forwarding.csv");

  const auto& voip_q = with_qos.stats.flow(kVoipFlow);
  const auto& voip_f = no_qos.stats.flow(kVoipFlow);
  const auto& bulk_q = with_qos.stats.flow(kBulkFlow);

  checks.expect_true("VoIP is loss-free under strict priority",
                     voip_q.loss_rate() == 0.0);
  checks.expect_true("VoIP p99 latency improves with CoS scheduling",
                     voip_q.latency.percentile(0.99) <
                         voip_f.latency.percentile(0.99));
  checks.expect_true("congestion is real: bulk loses packets",
                     bulk_q.loss_rate() > 0.0);

  // Hardware-budget summary: modelled label-processing load.
  const rtl::ClockModel clock;
  std::printf(
      "\nlabel-engine load (strict-priority run): %llu packets, "
      "%llu modeled cycles = %.3f ms of 50 MHz hardware time over 1 s "
      "simulated (%.2f%% utilisation)\n",
      static_cast<unsigned long long>(with_qos.packets),
      static_cast<unsigned long long>(with_qos.engine_cycles),
      clock.milliseconds(with_qos.engine_cycles),
      clock.seconds(with_qos.engine_cycles) * 100.0);
  json.set("engine.packets", with_qos.packets);
  json.set("engine.cycles", with_qos.engine_cycles);
  json.set("engine.utilisation", clock.seconds(with_qos.engine_cycles));
  json.write();
  return checks.exit_code();
}
