// Reproduces Figure 15: simulation of level-2 label pair entries.
//
// Paper narrative: the Figure 14 scenario repeated at level 2 — old
// labels 1..10 bound to new labels 500..509.  "Signal values for w_index
// and r_index iterate so all values are written and the correct values
// are read.  Once again the lookup_done signal goes high after the read
// attempt and the packetdiscard signal remains low."
#include "figure_common.hpp"

using namespace empls;

int main() {
  std::printf("== Figure 15: level-2 information base, write + lookup ==\n");
  bench::Checks checks;
  bench::FigureRig rig(/*level=*/2);

  rig.write_ten_pairs(2, /*first_index=*/1);
  checks.expect_eq("w_index after ten saves", 10,
                   static_cast<long long>(rig.modifier.level_count(2)));

  // Look up old label 4 (4th entry) via the 20-bit label comparator.
  const std::size_t lookup_start = rig.trace.num_samples();
  const auto result = rig.modifier.search(2, 4);
  rig.modifier.sim().run(3);

  checks.expect_true("entry found", result.found);
  checks.expect_eq("new label", 503, result.label);
  checks.expect_eq("operation",
                   static_cast<long long>(bench::figure_op(3)),
                   result.operation);
  checks.expect_eq("lookup cost (4th entry, 3k+5)", 17,
                   static_cast<long long>(result.cycles));

  const long done_at = rig.trace.find_first("lookup_done", 1, lookup_start);
  checks.expect_true("lookup_done goes high after the read attempt",
                     done_at >= 0);
  if (done_at >= 0) {
    const auto s = static_cast<std::size_t>(done_at);
    checks.expect_eq("r_index stops at the matching entry", 3,
                     static_cast<long long>(rig.trace.value("r_index", s)));
    checks.expect_eq("label_out after lookup", 503,
                     static_cast<long long>(rig.trace.value("label_out", s)));
  }
  checks.expect_true(
      "packetdiscard remains low",
      rig.trace.find_first("packetdiscard", 1, lookup_start) < 0);

  rig.emit("fig15.vcd", lookup_start > 3 ? lookup_start - 3 : 0,
           rig.trace.num_samples());
  return checks.exit_code();
}
