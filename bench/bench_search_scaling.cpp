// Reproduces the Section 5 scaling claim: "information can be retrieved
// from the information base in linear time and other operations are done
// in constant time."
//
// Sweeps the occupancy n and the hit position k on the RTL model,
// verifies cycles = 3k+5 everywhere (slope 3, intercept 5), and shows
// the constant-time operations stay flat across occupancy.
#include <string>

#include "bench_util.hpp"
#include "hw/cycle_model.hpp"
#include "hw/label_stack_modifier.hpp"
#include "rtl/clock_model.hpp"

using namespace empls;

int main() {
  std::printf("== Search scaling: linear lookups, constant-time ops ==\n\n");
  bench::Checks checks;
  bench::BenchJson json("search_scaling");
  const rtl::ClockModel clock;

  // Linear search: hit position sweep at full occupancy.
  {
    hw::LabelStackModifier m;
    for (rtl::u32 i = 0; i < 1024; ++i) {
      m.write_pair(2, mpls::LabelPair{i + 1, 2000 + i, mpls::LabelOp::kSwap});
    }
    bench::Table table(
        {"hit position k", "cycles (measured)", "3k+5", "time @50MHz (us)"});
    bool linear = true;
    for (rtl::u32 k : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u,
                       1024u}) {
      const auto r = m.search(2, k);
      linear = linear && r.found && r.cycles == hw::search_cycles(k);
      char us[32];
      std::snprintf(us, sizeof us, "%.3f", clock.microseconds(r.cycles));
      table.add_row({std::to_string(k), std::to_string(r.cycles),
                     std::to_string(hw::search_cycles(k)), us});
      json.set("search.cycles_at_k" + std::to_string(k), r.cycles);
    }
    table.print();
    table.write_csv("search_scaling.csv");
    checks.expect_true("search cycles == 3k+5 across the sweep", linear);

    // Slope/intercept from the extremes: exactly 3 and 5.
    const auto r1 = m.search(2, 1);
    const auto r1024 = m.search(2, 1024);
    const auto slope = (r1024.cycles - r1.cycles) / (1024 - 1);
    checks.expect_eq("slope (cycles per entry)", 3,
                     static_cast<long long>(slope));
    checks.expect_eq("intercept", 5,
                     static_cast<long long>(r1.cycles - 3));
    json.set("search.slope", slope);
    json.set("search.intercept", r1.cycles - 3);
  }

  // Constant-time operations: cost must not depend on occupancy.
  {
    std::printf("\n");
    bench::Table table({"occupancy n", "write pair", "user push", "user pop",
                        "reset"});
    bool flat = true;
    for (rtl::u32 n : {0u, 64u, 512u, 1023u}) {
      hw::LabelStackModifier m;
      for (rtl::u32 i = 0; i < n; ++i) {
        m.write_pair(2,
                     mpls::LabelPair{i + 1, 2000 + i, mpls::LabelOp::kSwap});
      }
      const auto w = m.write_pair(
          2, mpls::LabelPair{5000, 6000, mpls::LabelOp::kSwap});
      const auto pu = m.user_push(mpls::LabelEntry{9, 0, false, 64});
      const auto po = m.user_pop();
      const auto rs = m.do_reset();
      flat = flat && w == 3 && pu == 3 && po == 3 && rs == 3;
      table.add_row({std::to_string(n), std::to_string(w), std::to_string(pu),
                     std::to_string(po), std::to_string(rs)});
    }
    table.print();
    checks.expect_true("constant-time operations stay at 3 cycles", flat);
    json.set("const_ops.cycles", 3);
    json.set("const_ops.flat", flat);
  }

  json.write();
  return checks.exit_code();
}
