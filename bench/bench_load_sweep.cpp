// Extension experiment X6: latency/loss vs offered load, with and
// without CoS scheduling — the classic congestion curve the paper's
// QoS discussion implies, measured with parallel Monte-Carlo
// replications (8 per point, 95% confidence intervals).
//
// Topology: the X2 bottleneck (10 Mb/s core link).  The VoIP probe flow
// is fixed; bulk load sweeps from 20% to 140% of the bottleneck.
// Expected shape: with FIFO queues, VoIP latency and loss blow up past
// ~100% load; with strict priority, VoIP stays flat while bulk absorbs
// the congestion.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/replication.hpp"

using namespace empls;

namespace {

std::string scenario_text(const char* scheduler, double bulk_pps) {
  // Bulk packets are 1000 B payload + 16 B header + 4 B shim ≈ 8160
  // bits, so 1225 pps ≈ 10 Mb/s (100% of the bottleneck).
  std::string s;
  s += "qos ";
  s += scheduler;
  s += " capacity=32\n";
  s += R"(router W ler
router E ler
router A lsr
router B lsr
link W A 100M 0.5ms
link A B 10M 1ms
link B E 100M 0.5ms
lsp 10.1.0.0/16 W A B E
lsp 10.2.0.0/16 W A B E
flow cbr 1 W 10.1.0.9 cos=6 size=160 interval=20ms stop=1
)";
  s += "flow poisson 2 W 10.2.0.9 cos=1 size=1000 rate=" +
       std::to_string(bulk_pps) + " seed=11 stop=1\n";
  s += "run 1\n";
  return s;
}

struct Point {
  double voip_loss = 0;
  double voip_p99_ms = 0;
  double bulk_loss = 0;
};

Point measure(const char* scheduler, double load_fraction) {
  const double pps = 1225.0 * load_fraction;
  auto result = core::ReplicationRunner::run_text(
      scenario_text(scheduler, pps), /*replications=*/8, /*threads=*/0);
  Point p;
  if (const auto* agg =
          std::get_if<core::ReplicationRunner::Aggregate>(&result)) {
    p.voip_loss = agg->flows.at(1).loss_rate.mean;
    p.voip_p99_ms = agg->flows.at(1).p99_latency.mean * 1e3;
    p.bulk_loss = agg->flows.at(2).loss_rate.mean;
  }
  return p;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100);
  return buf;
}

std::string ms(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "== X6: VoIP under rising bulk load (8 replications/point) ==\n\n");
  bench::Checks checks;
  bench::Table table({"bulk load", "FIFO VoIP loss", "FIFO VoIP p99 (ms)",
                      "PRIO VoIP loss", "PRIO VoIP p99 (ms)",
                      "PRIO bulk loss"});

  Point fifo_low;
  Point fifo_high;
  Point prio_high;
  for (const double load : {0.2, 0.6, 0.9, 1.1, 1.4}) {
    const Point fifo = measure("fifo", load);
    const Point prio = measure("strict", load);
    char label[16];
    std::snprintf(label, sizeof label, "%.0f%%", load * 100);
    table.add_row({label, pct(fifo.voip_loss), ms(fifo.voip_p99_ms),
                   pct(prio.voip_loss), ms(prio.voip_p99_ms),
                   pct(prio.bulk_loss)});
    if (load == 0.2) {
      fifo_low = fifo;
    }
    if (load == 1.4) {
      fifo_high = fifo;
      prio_high = prio;
    }
  }
  table.print();
  table.write_csv("load_sweep.csv");

  checks.expect_true("uncongested: FIFO VoIP is loss-free",
                     fifo_low.voip_loss == 0.0);
  checks.expect_true("overload: FIFO VoIP suffers loss",
                     fifo_high.voip_loss > 0.02);
  checks.expect_true("overload: strict priority keeps VoIP loss-free",
                     prio_high.voip_loss == 0.0);
  checks.expect_true("overload: strict priority keeps VoIP p99 near the "
                     "uncongested baseline (< 2x)",
                     prio_high.voip_p99_ms < 2.0 * fifo_low.voip_p99_ms);
  checks.expect_true("overload: bulk pays for the congestion under "
                     "priority scheduling",
                     prio_high.bulk_loss > 0.1);
  return checks.exit_code();
}
