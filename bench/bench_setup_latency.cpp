// Extension experiment X5: control plane vs data plane time scales.
//
// The paper's architecture splits MPLS between software routing
// functionality and hardware label switching.  This bench quantifies
// the split: LSP setup (message-based CR-LDP/RSVP-TE-style signalling
// in software) takes milliseconds and grows linearly with path length,
// while the per-packet hardware operation it enables costs microseconds
// — the separation that justifies doing one in software and the other
// in hardware.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "hw/cycle_model.hpp"
#include "net/signaling.hpp"
#include "rtl/clock_model.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

int main() {
  std::printf("== X5: LSP setup latency vs hop count ==\n\n");
  bench::Checks checks;

  // A 12-node chain, 1 ms links.
  net::Network net;
  net::ControlPlane cp(net);
  net::SignalingProtocol signaling(net, cp, /*per_hop_processing=*/50e-6);
  std::vector<net::NodeId> chain;
  for (int i = 0; i < 12; ++i) {
    core::RouterConfig cfg;
    cfg.type = (i == 0 || i == 11) ? hw::RouterType::kLer
                                   : hw::RouterType::kLsr;
    std::string name(1, 'N');
    name += std::to_string(i);
    auto r = std::make_unique<core::EmbeddedRouter>(
        name, std::make_unique<sw::LinearEngine>(), cfg);
    auto* raw = r.get();
    chain.push_back(net.add_node(std::move(r)));
    cp.register_router(chain.back(), &raw->routing());
  }
  for (int i = 0; i + 1 < 12; ++i) {
    net.connect(chain[i], chain[i + 1], 100e6, 1e-3);
  }

  const rtl::ClockModel clock;
  bench::Table table({"hops", "setup latency (ms)",
                      "per-packet hw swap (us)", "ratio"});
  double prev_latency = 0.0;
  bool monotone = true;
  std::uint32_t fec_octet = 1;
  for (const std::size_t hops : {2u, 4u, 6u, 8u, 11u}) {
    std::vector<net::NodeId> path(chain.begin(),
                                  chain.begin() +
                                      static_cast<long>(hops) + 1);
    const std::string prefix =
        "10." + std::to_string(fec_octet++) + ".0.0/16";
    double latency = -1.0;
    signaling.signal_lsp(path, *mpls::Prefix::parse(prefix), 0.0,
                         [&](const net::SignalingProtocol::Result& r) {
                           latency = r.lsp ? r.setup_latency : -1.0;
                         });
    net.run();
    if (latency < 0) {
      std::printf("setup over %zu hops FAILED\n", hops);
      return 1;
    }
    monotone = monotone && latency > prev_latency;
    prev_latency = latency;

    // The hardware operation this LSP enables on each transit router:
    // one swap at shallow table depth.
    const double swap_us = clock.microseconds(hw::update_swap_cycles(4));
    char lat_s[32];
    char swap_s[32];
    char ratio_s[32];
    std::snprintf(lat_s, sizeof lat_s, "%.3f", latency * 1e3);
    std::snprintf(swap_s, sizeof swap_s, "%.2f", swap_us);
    std::snprintf(ratio_s, sizeof ratio_s, "%.0fx",
                  latency * 1e6 / swap_us);
    table.add_row({std::to_string(hops), lat_s, swap_s, ratio_s});
  }
  table.print();
  table.write_csv("setup_latency.csv");

  checks.expect_true("setup latency grows monotonically with hops",
                     monotone);
  checks.expect_true("all signalling completed",
                     signaling.stats().setups_completed == 5 &&
                         signaling.stats().setups_failed == 0);
  std::printf(
      "\nshape: one software signalling round costs ~10^4 hardware label "
      "operations — amortised over every packet on the LSP, which is the "
      "architecture's point.\n");
  return checks.exit_code();
}
