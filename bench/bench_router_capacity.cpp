// Extension experiment X7: router forwarding capacity vs information-
// base occupancy — the system-level consequence of the 3n+5 search.
//
// A single LSR's label stack modifier is a serial datapath: its packet
// rate is bounded by f(clk) / cycles-per-update.  With the paper's
// linear search the bound collapses as the table fills:
//
//   n = 10   -> 50 MHz / (3*10+5+6)  ~ 1.2 M updates/s
//   n = 1024 -> 50 MHz / (3*1024+5+6) ~ 16 k updates/s
//
// The bench offers increasing packet rates to a router whose swap entry
// sits at a controlled table depth and measures delivered rate and
// engine backlog; the CAM ablation shows the same router with a
// constant-time information base for contrast.
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "core/embedded_router.hpp"
#include "hw/cycle_model.hpp"
#include "net/network.hpp"
#include "rtl/clock_model.hpp"
#include "sw/cam_engine.hpp"
#include "sw/linear_engine.hpp"

using namespace empls;

namespace {

struct Measurement {
  double delivered_fraction = 0.0;
  std::uint64_t overruns = 0;
  std::size_t queue_peak = 0;
};

/// Offer `rate_pps` of back-to-back swaps for 50 ms; the swap entry sits
/// at depth `hit_depth` of a table holding `occupancy` pairs.
Measurement measure(bool cam, rtl::u32 occupancy, rtl::u32 hit_depth,
                    double rate_pps) {
  net::Network net;
  core::RouterConfig cfg;
  cfg.type = hw::RouterType::kLsr;
  std::unique_ptr<sw::LabelEngine> engine;
  if (cam) {
    engine = std::make_unique<sw::CamEngine>();
  } else {
    engine = std::make_unique<sw::LinearEngine>();
  }
  auto router = std::make_unique<core::EmbeddedRouter>(
      "LSR", std::move(engine), cfg);
  auto* raw = router.get();
  const auto lsr = net.add_node(std::move(router));

  // Table: hit_depth-1 non-matching pairs, the ping-pong pair at
  // hit_depth, filler to `occupancy`.
  for (rtl::u32 i = 1; i <= occupancy; ++i) {
    rtl::u32 out = 100000 + i;
    if (i == hit_depth) {
      out = 200001;
    } else if (i == hit_depth + 1) {
      out = 200000;
    }
    raw->engine().write_pair(
        2, mpls::LabelPair{200000 + (i == hit_depth       ? 0
                                     : i == hit_depth + 1 ? 1
                                                          : 10 + i),
                           out, mpls::LabelOp::kSwap});
  }
  // No next hops are programmed: packets are discarded after the
  // engine, which is fine — this bench measures the datapath, counting
  // completed swaps via the router's stats.

  const double interval = 1.0 / rate_pps;
  const std::uint64_t count = static_cast<std::uint64_t>(0.05 * rate_pps);
  for (std::uint64_t i = 0; i < count; ++i) {
    net.events().schedule_at(static_cast<double>(i) * interval, [&net, lsr] {
      mpls::Packet p;
      p.dst = mpls::Ipv4Address::from_octets(10, 0, 0, 1);
      p.stack.push(mpls::LabelEntry{200000, 0, false, 255});
      net.inject(lsr, std::move(p));
    });
  }
  net.run();

  Measurement m;
  const auto& s = raw->stats();
  m.delivered_fraction =
      static_cast<double>(s.swaps) / static_cast<double>(count);
  m.overruns = s.engine_overruns;
  m.queue_peak = s.engine_queue_peak;
  return m;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f%%", v * 100);
  return buf;
}

}  // namespace

int main() {
  std::printf("== X7: router capacity vs information-base occupancy ==\n\n");
  bench::Checks checks;
  const rtl::ClockModel clock;

  const rtl::u64 shallow_capacity =
      static_cast<rtl::u64>(clock.frequency_hz() /
                            static_cast<double>(hw::update_swap_cycles(10)));
  const rtl::u64 deep_capacity =
      static_cast<rtl::u64>(clock.frequency_hz() /
                            static_cast<double>(hw::update_swap_cycles(1024)));
  std::printf("analytic capacity @50 MHz: hit depth 10 -> %llu pps, "
              "hit depth 1024 -> %llu pps\n\n",
              static_cast<unsigned long long>(shallow_capacity),
              static_cast<unsigned long long>(deep_capacity));

  bench::Table table({"info base", "offered (pps)", "engine completed",
                      "overruns", "queue peak"});
  struct Case {
    bool cam;
    rtl::u32 occupancy;
    rtl::u32 depth;
    double rate;
    const char* label;
  };
  const Case cases[] = {
      {false, 10, 10, 100e3, "linear n=10"},
      {false, 10, 10, 1.5e6, "linear n=10"},
      {false, 1024, 1024, 10e3, "linear n=1024"},
      {false, 1024, 1024, 100e3, "linear n=1024"},
      {true, 1024, 1024, 100e3, "CAM n=1024"},
      {true, 1024, 1024, 1.5e6, "CAM n=1024"},
  };
  Measurement linear_deep_fast;
  Measurement cam_deep_fast;
  for (const auto& c : cases) {
    const auto m = measure(c.cam, c.occupancy, c.depth, c.rate);
    char rate_s[32];
    std::snprintf(rate_s, sizeof rate_s, "%.0fk", c.rate / 1e3);
    table.add_row({c.label, rate_s, pct(m.delivered_fraction),
                   std::to_string(m.overruns), std::to_string(m.queue_peak)});
    if (!c.cam && c.occupancy == 1024 && c.rate == 100e3) {
      linear_deep_fast = m;
    }
    if (c.cam && c.rate == 100e3) {
      cam_deep_fast = m;
    }
  }
  table.print();
  table.write_csv("router_capacity.csv");

  checks.expect_true(
      "full linear table saturates at 100k pps (completions << offered)",
      linear_deep_fast.delivered_fraction < 0.5 &&
          linear_deep_fast.overruns > 0);
  checks.expect_true("CAM at the same load completes everything",
                     cam_deep_fast.delivered_fraction > 0.999 &&
                         cam_deep_fast.overruns == 0);
  std::printf(
      "\nshape: the paper's linear search caps a full router at ~%llu pps "
      "— fine for 2005 edge links, three orders short of line rate; the "
      "CAM organisation removes the occupancy dependence entirely.\n",
      static_cast<unsigned long long>(deep_capacity));
  return checks.exit_code();
}
